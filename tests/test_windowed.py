"""Windowed tier: generation rotation, expiry un-latch, decay, serving.

Pins the :mod:`repro.windowed` subsystem (DESIGN.md §13) from every angle
the two registry contracts assert in the large:

* rotation-boundary equivalence — windowed state is a pure function of
  the covered suffix, across all five condition profiles and all three
  ingest paths (scalar / exact batch / grouped batch);
* the re-derived sticky rule — a latched violation un-latches when its
  last supporting pane rotates out (and the landmark estimator, by
  contrast, stays latched forever);
* both kernel backends, including the compiled decline-and-fallback path;
* ``stream.windows`` edge behavior at ``size=1`` and exact step
  multiples, and the ``windowed_counts`` driver's cadence;
* the serving layer: windowed snapshot readouts, ``/query?window=``, and
  bit-for-bit windowed checkpoint/resume (in-process and SIGTERM
  subprocess).

Heavy seeded sweeps carry ``@pytest.mark.windowed`` (nightly runs them;
the PR tier keeps the quick versions).
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import time
from http.client import HTTPConnection
from pathlib import Path

import numpy as np
import pytest

from repro.core.conditions import ImplicationConditions
from repro.core.estimator import ImplicationCountEstimator
from repro.core.serialize import estimator_state_digest
from repro.engine import shutdown_runtime
from repro.kernels import available_backends
from repro.observability import MetricsRegistry, set_registry
from repro.serving.http import build_server
from repro.serving.service import ImplicationService, ServeConfig, itemset_summary
from repro.stream.windows import (
    sliding_counts,
    tumbling,
    window_index,
    windowed_counts,
)
from repro.verify.harness import CONDITION_PROFILES
from repro.verify.streams import generate_stream
from repro.windowed import (
    DecayingImplicationCounter,
    WindowedImplicationEstimator,
    decay_fringe_counters,
    offline_window_reference,
    windowed_state_digest,
)

SRC_ROOT = Path(__file__).resolve().parents[1] / "src"

COMPILED_AVAILABLE = "compiled" in available_backends()
needs_compiled = pytest.mark.skipif(
    not COMPILED_AVAILABLE, reason="compiled kernel backend unavailable"
)

CONDITIONS = dict(CONDITION_PROFILES)
PROFILE_NAMES = list(CONDITIONS)

#: A one-to-one profile whose violations are easy to stage by hand.
STRICT = ImplicationConditions(max_multiplicity=1, min_support=1)


@pytest.fixture
def registry():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


def make_windowed(
    conditions=STRICT, window=64, generations=4, seed=0, **kwargs
) -> WindowedImplicationEstimator:
    return WindowedImplicationEstimator(
        conditions,
        num_bitmaps=8,
        seed=seed,
        window=window,
        generations=generations,
        **kwargs,
    )


def drive(windowed, lhs, rhs) -> None:
    for itemset, partner in zip(lhs.tolist(), rhs.tolist()):
        windowed.update(itemset, partner)


# --------------------------------------------------------------------- #
# Construction and dispatch
# --------------------------------------------------------------------- #


class TestConstruction:
    def test_window_kwarg_dispatches_from_estimator_constructor(self):
        built = ImplicationCountEstimator(
            STRICT, num_bitmaps=8, seed=3, window=64, window_generations=2
        )
        assert isinstance(built, WindowedImplicationEstimator)
        assert built.window == 64
        assert built.generations == 2
        assert built.num_bitmaps == 8
        # Same placement family as a directly-built windowed estimator.
        direct = make_windowed(window=64, generations=2, seed=3)
        assert repr(built.hash_function) == repr(direct.hash_function)

    def test_without_window_constructor_stays_landmark(self):
        built = ImplicationCountEstimator(STRICT, num_bitmaps=8)
        assert type(built) is ImplicationCountEstimator

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError, match="window"):
            make_windowed(window=0)

    def test_generations_must_divide_window(self):
        with pytest.raises(ValueError, match="multiple of generations"):
            make_windowed(window=10, generations=4)
        with pytest.raises(ValueError, match="generations"):
            make_windowed(window=8, generations=0)

    def test_spawn_like_shares_placement_hash(self):
        windowed = make_windowed()
        twin = windowed.spawn_like()
        assert twin.window == windowed.window
        assert twin.generations == windowed.generations
        assert twin.clock == 0
        assert repr(twin.hash_function) == repr(windowed.hash_function)


# --------------------------------------------------------------------- #
# Rotation and retirement bookkeeping
# --------------------------------------------------------------------- #


class TestRotation:
    def test_rotation_lands_on_absolute_grid(self):
        windowed = make_windowed(window=16, generations=4)  # step 4
        lhs = np.arange(10, dtype=np.int64)
        drive(windowed, lhs, lhs)
        assert windowed.live_origins() == [0, 4, 8]
        assert windowed.clock == 10

    def test_retirement_drops_expired_panes(self):
        windowed = make_windowed(window=16, generations=4)
        lhs = np.arange(21, dtype=np.int64)
        drive(windowed, lhs, lhs)
        # clock 21: pane [0,4) has origin+step=4 <= 21-16=5, retired.
        assert windowed.live_origins() == [4, 8, 12, 16, 20]
        assert windowed.window_start == 4
        assert 16 <= windowed.tuples_in_window < 16 + 4

    def test_coverage_exact_at_step_multiples(self):
        windowed = make_windowed(window=16, generations=4)
        lhs = np.arange(24, dtype=np.int64)
        drive(windowed, lhs, lhs)
        assert windowed.clock == 24
        assert windowed.tuples_in_window == 16
        assert windowed.live_origins() == [8, 12, 16, 20]

    def test_fresh_estimator_reads_zero(self):
        windowed = make_windowed()
        assert windowed.implication_count() == 0.0
        assert windowed.nonimplication_count() == 0.0
        assert windowed.window_start == windowed.clock == 0
        assert windowed.live_origins() == []

    def test_weighted_update_is_one_instant(self):
        windowed = make_windowed(window=16, generations=4)
        windowed.update(1, 2, weight=6)  # spans past pane [0,4) by weight
        assert windowed.clock == 6
        assert windowed.live_origins() == [0]  # whole weight in arrival pane
        windowed.update(3, 4)
        assert windowed.live_origins() == [0, 4]

    def test_merged_readout_cached_until_update(self):
        windowed = make_windowed()
        windowed.update(1, 2)
        first = windowed.merged()
        assert windowed.merged() is first
        windowed.update(3, 4)
        assert windowed.merged() is not first

    def test_batch_splits_at_pane_boundaries(self):
        windowed = make_windowed(window=16, generations=4)
        lhs = np.arange(11, dtype=np.int64)
        windowed.update_batch(lhs, lhs, aggregate=False, grouped=False)
        assert windowed.live_origins() == [0, 4, 8]
        assert windowed.clock == 11

    def test_batch_shape_mismatch_rejected(self):
        windowed = make_windowed()
        with pytest.raises(ValueError, match="align"):
            windowed.update_batch(np.arange(3), np.arange(4))


# --------------------------------------------------------------------- #
# Rotation-boundary equivalence, all condition profiles x ingest paths
# --------------------------------------------------------------------- #


class TestEquivalence:
    """The contract assertions, re-run per profile as focused tests."""

    @pytest.mark.parametrize("profile", PROFILE_NAMES)
    def test_scalar_drive_is_pure_function_of_suffix(self, profile):
        lhs, rhs = generate_stream("skewed", 11, 160)
        windowed = make_windowed(CONDITIONS[profile], window=64, generations=4)
        drive(windowed, lhs, rhs)
        start = windowed.window_start
        replay = offline_window_reference(windowed, lhs[start:], rhs[start:])
        assert windowed_state_digest(replay) == windowed_state_digest(windowed)

    @pytest.mark.parametrize("profile", PROFILE_NAMES)
    def test_batch_drive_matches_scalar_digest(self, profile):
        lhs, rhs = generate_stream("bursty", 12, 160)
        scalar = make_windowed(CONDITIONS[profile], window=64, generations=4)
        drive(scalar, lhs, rhs)
        batched = scalar.spawn_like()
        for begin in range(0, len(lhs), 13):  # deliberately off the grid
            batched.update_batch(
                lhs[begin : begin + 13],
                rhs[begin : begin + 13],
                aggregate=False,
                grouped=False,
            )
        assert batched.live_origins() == scalar.live_origins()
        assert windowed_state_digest(batched) == windowed_state_digest(scalar)

    @pytest.mark.parametrize("profile", PROFILE_NAMES)
    def test_grouped_drive_matches_scalar_under_unbounded_fringe(self, profile):
        # grouped=True is exact only with an unbounded fringe (the
        # batch-scalar-replay contract's documented scope); under it the
        # grouped path must land on the scalar windowed digest too.
        lhs, rhs = generate_stream("uniform", 13, 160)
        scalar = make_windowed(
            CONDITIONS[profile], window=64, generations=4, fringe_size=None
        )
        drive(scalar, lhs, rhs)
        grouped = scalar.spawn_like()
        for begin in range(0, len(lhs), 32):
            grouped.update_batch(
                lhs[begin : begin + 32],
                rhs[begin : begin + 32],
                aggregate=False,
                grouped=True,
            )
        assert windowed_state_digest(grouped) == windowed_state_digest(scalar)

    def test_update_many_matches_scalar(self):
        lhs, rhs = generate_stream("skewed", 14, 120)
        scalar = make_windowed(window=32, generations=4)
        drive(scalar, lhs, rhs)
        many = scalar.spawn_like()
        many.update_many(zip(lhs.tolist(), rhs.tolist()))
        assert windowed_state_digest(many) == windowed_state_digest(scalar)

    def test_theta_zero_merged_equals_landmark_over_suffix(self):
        # The literal "landmark estimator over only the last W tuples",
        # bit-for-bit, in the scope where merge is exact.
        lhs, rhs = generate_stream("skewed", 15, 160)
        windowed = make_windowed(
            CONDITIONS["support-only"],
            window=64,
            generations=4,
            fringe_size=None,
        )
        drive(windowed, lhs, rhs)
        start = windowed.window_start
        landmark = ImplicationCountEstimator(
            CONDITIONS["support-only"],
            num_bitmaps=8,
            fringe_size=None,
            hash_function=windowed.hash_function,
        )
        for itemset, partner in zip(lhs[start:].tolist(), rhs[start:].tolist()):
            landmark.update(itemset, partner)
        assert estimator_state_digest(windowed.merged()) == (
            estimator_state_digest(landmark)
        )

    @pytest.mark.windowed
    @pytest.mark.parametrize("stream_profile", ["uniform", "skewed", "bursty"])
    def test_seeded_sweep_boundary_purity(self, stream_profile):
        """Offline-replay purity at *every* rotation boundary, several
        seeds per stream profile — the nightly-widened version of the
        contract's single-seed pass."""
        for seed in range(4):
            lhs, rhs = generate_stream(stream_profile, 100 + seed, 192)
            for profile in PROFILE_NAMES:
                windowed = make_windowed(
                    CONDITIONS[profile], window=64, generations=4, seed=seed
                )
                pairs = list(zip(lhs.tolist(), rhs.tolist()))
                for index, (itemset, partner) in enumerate(pairs, start=1):
                    windowed.update(itemset, partner)
                    if index % windowed.step and index != len(pairs):
                        continue
                    start = windowed.window_start
                    replay = offline_window_reference(
                        windowed, lhs[start:index], rhs[start:index]
                    )
                    assert windowed_state_digest(replay) == (
                        windowed_state_digest(windowed)
                    ), (stream_profile, profile, seed, index)


# --------------------------------------------------------------------- #
# Re-derived sticky semantics: expiry un-latches
# --------------------------------------------------------------------- #


class TestExpiryUnlatch:
    """A multiplicity breach latches by absorbing the itemset's cell into
    the Zone-1 bits (the Section 4.3 memory bound: a value-1 cell stores
    nothing that could be un-latched).  These tests read the latch through
    ``itemset_summary``'s ``zone`` field and the non-implication count,
    with an unbounded fringe so capacity absorption cannot fake either
    signal."""

    WINDOW = 16  # step 4 with 4 generations

    def _fresh(self):
        return make_windowed(
            STRICT, window=self.WINDOW, generations=4, fringe_size=None
        )

    def _expire_first_pane(self, windowed):
        filler = iter(range(1000, 2000))
        while windowed.window_start < 4:
            windowed.update(next(filler), 0)

    def test_violation_unlatches_when_evidence_rotates_out(self):
        windowed = self._fresh()
        windowed.update(7, 1)
        windowed.update(7, 2)  # two partners, multiplicity 1: latched
        assert itemset_summary(windowed.merged(), 7)["zone"] == "zone1"
        assert windowed.nonimplication_count() > 0
        self._expire_first_pane(windowed)
        summary = itemset_summary(windowed.merged(), 7)
        assert summary["zone"] == "fringe"  # the latch retired with its pane
        assert summary["tracked"] is False  # and no evidence remains
        assert windowed.nonimplication_count() == 0.0

    def test_landmark_estimator_stays_latched_forever(self):
        landmark = ImplicationCountEstimator(
            STRICT, num_bitmaps=8, fringe_size=None
        )
        landmark.update(7, 1)
        landmark.update(7, 2)
        elevated = landmark.nonimplication_count()
        for filler in range(1000, 1100):
            landmark.update(filler, 0)
        assert itemset_summary(landmark, 7)["zone"] == "zone1"
        assert landmark.nonimplication_count() >= elevated

    def test_cross_pane_violation_reproved_at_merge(self):
        windowed = self._fresh()
        windowed.update(7, 1)  # pane [0, 4)
        for filler in range(100, 103):
            windowed.update(filler, 0)
        windowed.update(7, 2)  # pane [4, 8): second partner, other pane
        # Neither pane alone saw both partners; the merge must re-prove.
        assert itemset_summary(windowed.merged(), 7)["zone"] == "zone1"
        assert windowed.nonimplication_count() > 0
        # Once the first partner's pane retires, only partner 2 remains in
        # the window — the itemset is clean (and tracked) again.
        self._expire_first_pane(windowed)
        summary = itemset_summary(windowed.merged(), 7)
        assert summary["tracked"] is True
        assert summary["violated"] is False
        assert summary["support"] == 1
        assert windowed.nonimplication_count() == 0.0

    def test_windowed_nonimplication_count_can_fall(self):
        windowed = self._fresh()
        windowed.update(7, 1)
        windowed.update(7, 2)
        elevated = windowed.nonimplication_count()
        assert elevated > 0
        self._expire_first_pane(windowed)
        assert windowed.nonimplication_count() < elevated


# --------------------------------------------------------------------- #
# Serialization: generation payloads and digests
# --------------------------------------------------------------------- #


class TestSerialization:
    def _loaded_stream(self):
        lhs, rhs = generate_stream("skewed", 21, 100)
        windowed = make_windowed(window=32, generations=4)
        drive(windowed, lhs, rhs)
        return windowed, lhs, rhs

    def test_generation_payload_roundtrip_is_bit_for_bit(self):
        windowed, lhs, rhs = self._loaded_stream()
        restored = windowed.spawn_like()
        restored.load_generations(windowed.clock, windowed.generation_payloads())
        assert restored.clock == windowed.clock
        assert restored.live_origins() == windowed.live_origins()
        assert restored.state_digest() == windowed.state_digest()
        # Continued ingest stays on the uninterrupted trajectory.
        more_lhs, more_rhs = generate_stream("skewed", 22, 40)
        drive(windowed, more_lhs, more_rhs)
        drive(restored, more_lhs, more_rhs)
        assert restored.state_digest() == windowed.state_digest()

    def test_load_generations_rejects_off_grid_origin(self):
        windowed, _, _ = self._loaded_stream()
        payloads = windowed.generation_payloads()
        bad = [(origin + 1, blob) for origin, blob in payloads]
        with pytest.raises(ValueError, match="pane grid"):
            windowed.spawn_like().load_generations(windowed.clock, bad)

    def test_load_generations_rejects_non_ascending_origins(self):
        windowed, _, _ = self._loaded_stream()
        payloads = windowed.generation_payloads()
        with pytest.raises(ValueError, match="ascend"):
            windowed.spawn_like().load_generations(
                windowed.clock, list(reversed(payloads))
            )

    def test_load_generations_rejects_expired_pane(self):
        windowed, _, _ = self._loaded_stream()
        payloads = windowed.generation_payloads()
        with pytest.raises(ValueError, match="expired"):
            windowed.spawn_like().load_generations(
                windowed.clock + windowed.window + windowed.step, payloads
            )

    def test_load_generations_rejects_incompatible_geometry(self):
        windowed, _, _ = self._loaded_stream()
        other = WindowedImplicationEstimator(
            STRICT, num_bitmaps=16, seed=9, window=32, generations=4
        )
        with pytest.raises(ValueError, match="incompatible"):
            other.load_generations(
                windowed.clock, windowed.generation_payloads()
            )

    def test_digest_is_window_relative(self):
        # Same covered content at different absolute positions digests
        # identically — the purity property the offline-replay contract
        # leans on.
        lhs, rhs = generate_stream("uniform", 23, 96)
        late = make_windowed(window=32, generations=4)
        drive(late, lhs, rhs)
        start = late.window_start
        early = late.spawn_like()
        drive(early, lhs[start:], rhs[start:])
        assert early.window_start == 0 and late.window_start == start
        assert early.state_digest() == late.state_digest()


# --------------------------------------------------------------------- #
# Exponential decay variant
# --------------------------------------------------------------------- #


class TestDecay:
    def test_factor_validation(self):
        estimator = ImplicationCountEstimator(STRICT, num_bitmaps=8)
        with pytest.raises(ValueError, match="factor"):
            decay_fringe_counters(estimator, 1.0)
        with pytest.raises(ValueError, match="factor"):
            decay_fringe_counters(estimator, -0.1)

    def test_half_life_validation(self):
        with pytest.raises(ValueError, match="half_life"):
            DecayingImplicationCounter(STRICT, half_life=0, num_bitmaps=8)

    def test_decay_halves_supports_and_drops_zeroes(self):
        conditions = ImplicationConditions(min_support=1)
        estimator = ImplicationCountEstimator(conditions, num_bitmaps=8)
        for _ in range(8):
            estimator.update(7, 1)
        estimator.update(9, 1)  # support 1: one halving drops it

        def support_of(itemset):
            summary = itemset_summary(estimator, itemset)
            return summary["support"] if summary["tracked"] else None

        before_seven = support_of(7)
        if before_seven is None:
            pytest.skip("itemset 7 landed outside the fringe for this seed")
        dropped = decay_fringe_counters(estimator, 0.5)
        assert support_of(7) == before_seven // 2
        if support_of(9) is None:
            assert dropped >= 1

    def test_decaying_counter_ticks_on_absolute_grid(self):
        counter = DecayingImplicationCounter(
            STRICT, half_life=50, num_bitmaps=8
        )
        lhs, rhs = generate_stream("uniform", 31, 300)
        counter.update_batch(lhs, rhs)
        assert counter.clock == 300
        assert counter.decays == 6

    def test_decaying_counter_batch_matches_scalar(self):
        lhs, rhs = generate_stream("skewed", 32, 260)
        scalar = DecayingImplicationCounter(STRICT, half_life=50, num_bitmaps=8)
        for itemset, partner in zip(lhs.tolist(), rhs.tolist()):
            scalar.update(itemset, partner)
        batched = DecayingImplicationCounter(
            STRICT, half_life=50, num_bitmaps=8
        )
        for begin in range(0, len(lhs), 37):  # off the half-life grid
            batched.update_batch(lhs[begin : begin + 37], rhs[begin : begin + 37])
        assert batched.decays == scalar.decays
        assert estimator_state_digest(batched.estimator) == (
            estimator_state_digest(scalar.estimator)
        )

    def test_decayed_count_fades_instead_of_expiring(self):
        counter = DecayingImplicationCounter(
            ImplicationConditions(min_support=4),
            half_life=64,
            num_bitmaps=8,
        )
        for _ in range(16):
            counter.update(7, 1)
        strong = itemset_summary(counter.estimator, 7)
        if not strong["tracked"]:
            pytest.skip("itemset 7 landed outside the fringe for this seed")
        for filler in range(1000, 1000 + 3 * 64):
            counter.update(filler, 0)
        faded = itemset_summary(counter.estimator, 7)
        if faded["tracked"]:
            assert faded["support"] < strong["support"]
        assert counter.decays == (16 + 3 * 64) // 64


# --------------------------------------------------------------------- #
# Kernel backends
# --------------------------------------------------------------------- #


class TestKernelBackends:
    @pytest.mark.parametrize(
        "backend",
        [
            "python",
            pytest.param("compiled", marks=needs_compiled),
        ],
    )
    def test_backend_parity_with_python_digest(self, backend):
        lhs, rhs = generate_stream("skewed", 41, 160)
        reference = make_windowed(window=64, generations=4, kernels="python")
        under_test = make_windowed(window=64, generations=4, kernels=backend)
        for windowed in (reference, under_test):
            for begin in range(0, len(lhs), 24):
                windowed.update_batch(
                    lhs[begin : begin + 24], rhs[begin : begin + 24]
                )
        assert under_test.state_digest() == reference.state_digest()

    @pytest.mark.parametrize(
        "backend",
        [
            "python",
            pytest.param("compiled", marks=needs_compiled),
        ],
    )
    def test_env_selected_backend_parity(self, backend, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", backend)
        lhs, rhs = generate_stream("bursty", 42, 120)
        windowed = make_windowed(window=32, generations=4)  # kernels=None: env
        windowed.update_batch(lhs, rhs)
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "python")
        reference = make_windowed(window=32, generations=4)
        reference.update_batch(lhs, rhs)
        assert windowed.state_digest() == reference.state_digest()

    @needs_compiled
    def test_compiled_decline_falls_back_to_python_digest(self, registry):
        """String itemsets cannot ride the flat C encoding; the windowed
        batch path after them must silently take the python path — same
        digest as a pure-python twin, fallback counter bumped."""
        lhs, rhs = generate_stream("uniform", 43, 96)
        compiled = make_windowed(window=32, generations=4, kernels="compiled")
        python = make_windowed(window=32, generations=4, kernels="python")
        for windowed in (compiled, python):
            windowed.update("itemset-a", "partner-1")
            windowed.update("itemset-a", "partner-1")
            windowed.update_batch(lhs, rhs)
        assert compiled.state_digest() == python.state_digest()
        assert registry.counter("kernels.fallbacks").value >= 1

    def test_generations_inherit_pinned_backend(self):
        windowed = make_windowed(window=16, generations=4, kernels="python")
        lhs = np.arange(10, dtype=np.int64)
        drive(windowed, lhs, lhs)
        assert all(
            pane.kernels.name == "python" for _, pane in windowed._panes
        )
        assert windowed.merged().kernels.name == "python"


# --------------------------------------------------------------------- #
# stream.windows edges and the windowed_counts driver
# --------------------------------------------------------------------- #


class TestStreamWindowEdges:
    def test_tumbling_size_one(self):
        assert list(tumbling([1, 2, 3], 1)) == [[1], [2], [3]]

    def test_tumbling_exact_multiple_has_no_short_tail(self):
        windows = list(tumbling(range(6), 3))
        assert windows == [[0, 1, 2], [3, 4, 5]]

    def test_tumbling_emits_short_tail(self):
        assert list(tumbling(range(5), 3)) == [[0, 1, 2], [3, 4]]

    def test_window_index_edges(self):
        assert window_index(0, 1) == 0
        assert window_index(5, 1) == 5
        assert window_index(5, 5) == 1
        assert window_index(4, 5) == 0
        with pytest.raises(ValueError):
            window_index(-1, 5)
        with pytest.raises(ValueError):
            window_index(0, 0)

    def test_sliding_counts_size_one_step_one(self):
        got = list(sliding_counts([10, 20, 30], 1, 1, lambda w: w[0]))
        assert got == [(1, 10), (2, 20), (3, 30)]  # tail not re-emitted

    def test_sliding_counts_exact_step_multiple_no_duplicate_tail(self):
        got = list(sliding_counts(range(8), 4, 2, tuple))
        assert [position for position, _ in got] == [4, 6, 8]
        assert got[-1] == (8, (4, 5, 6, 7))

    def test_sliding_counts_emits_final_partial_step(self):
        got = list(sliding_counts(range(7), 4, 2, tuple))
        assert [position for position, _ in got] == [4, 6, 7]

    def test_sliding_counts_short_stream_yields_nothing(self):
        assert list(sliding_counts(range(3), 4, 2, tuple)) == []

    def test_windowed_counts_matches_sliding_cadence(self):
        lhs, rhs = generate_stream("uniform", 51, 70)
        pairs = list(zip(lhs.tolist(), rhs.tolist()))
        windowed = make_windowed(window=16, generations=4)
        estimate_positions = [
            position
            for position, _ in windowed_counts(
                iter(pairs), windowed, 4, lambda w: w.clock
            )
        ]
        exact_positions = [
            position for position, _ in sliding_counts(pairs, 16, 4, len)
        ]
        assert estimate_positions == exact_positions

    def test_windowed_counts_validation_and_empty_stream(self):
        windowed = make_windowed(window=16, generations=4)
        with pytest.raises(ValueError, match="step"):
            list(windowed_counts(iter([]), windowed, 0, lambda w: 0))
        with pytest.raises(ValueError, match="warmup"):
            list(windowed_counts(iter([]), windowed, 1, lambda w: 0, warmup=-1))
        assert list(windowed_counts(iter([]), windowed, 1, lambda w: 0)) == []


# --------------------------------------------------------------------- #
# Serving: windowed snapshots, HTTP, checkpoint/resume
# --------------------------------------------------------------------- #


def _serve_config(**overrides) -> ServeConfig:
    base = dict(
        source="profile:skewed",
        tuples=6000,
        batch_size=512,
        num_bitmaps=8,
        workers=1,
        profiles=("support-only", "noisy-confidence"),
        publish_every=2,
        window=2048,
        window_generations=4,
    )
    base.update(overrides)
    return ServeConfig(**base)


class TestServingWindowed:
    def test_serve_config_validates_window(self):
        with pytest.raises(ValueError, match="window"):
            _serve_config(window=2049)  # not a multiple of 4 generations
        with pytest.raises(ValueError, match="window"):
            _serve_config(window=0)

    def test_snapshot_carries_window_readout(self):
        service = ImplicationService(_serve_config())
        while service.ingest_step():
            pass
        snapshot = service.store.get("support-only")
        assert snapshot.window is not None
        assert snapshot.window["window"] == 2048
        assert snapshot.window["generations"] == 4
        assert 2048 <= snapshot.window["covered"] < 2048 + 512
        assert snapshot.window["clock"] == 6000
        stats = snapshot.window["stats"]
        assert stats["tuples"] == snapshot.window["covered"]
        assert stats["implication"] == (
            snapshot.window_estimator.implication_count()
        )
        # The windowed view diverges from the landmark totals.
        assert stats["implication"] != snapshot.stats["implication"]
        assert snapshot.describe()["window"]["digest"] == (
            snapshot.window["digest"]
        )

    def test_landmark_service_serves_no_window(self):
        service = ImplicationService(_serve_config(window=None, tuples=1024))
        service.ingest_step()
        snapshot = service.store.get("support-only")
        assert snapshot.window is None
        assert snapshot.window_estimator is None
        assert "window" not in snapshot.describe()

    def test_http_query_window_readout_and_errors(self):
        service = ImplicationService(_serve_config(tuples=4096))
        while service.ingest_step():
            pass
        httpd = build_server(service)
        try:
            import threading

            thread = threading.Thread(target=httpd.serve_forever, daemon=True)
            thread.start()
            port = httpd.server_address[1]

            def get(path):
                connection = HTTPConnection("127.0.0.1", port, timeout=10)
                connection.request("GET", path)
                response = connection.getresponse()
                body = response.read()
                connection.close()
                return response.status, json.loads(body)

            status, body = get(
                "/query?profile=support-only&window=1&stat=implication"
            )
            assert status == 200
            assert body["windowed"] is True
            assert body["value"] == body["window"]["stats"]["implication"]
            # The top-level stats block must BE the windowed one — serving
            # landmark numbers beside windowed=True would be misleading.
            assert body["stats"] == body["window"]["stats"]
            status, plain = get("/query?profile=support-only&stat=implication")
            assert plain["value"] != body["value"]
            status, error = get("/query?profile=support-only&window=maybe")
            assert status == 400 and "window" in error["error"]
            status, top = get("/top?profile=support-only&itemset=3&window=1")
            assert status == 200 and top["windowed"] is True
            assert top["window_digest"] == body["window"]["digest"]
        finally:
            httpd.shutdown()
            httpd.server_close()

    def test_http_window_param_rejected_without_window(self):
        service = ImplicationService(_serve_config(window=None, tuples=1024))
        service.ingest_step()
        httpd = build_server(service)
        try:
            import threading

            thread = threading.Thread(target=httpd.serve_forever, daemon=True)
            thread.start()
            port = httpd.server_address[1]
            connection = HTTPConnection("127.0.0.1", port, timeout=10)
            connection.request("GET", "/query?profile=support-only&window=1")
            response = connection.getresponse()
            body = json.loads(response.read())
            connection.close()
            assert response.status == 400
            assert "--window" in body["error"]
        finally:
            httpd.shutdown()
            httpd.server_close()

    def test_stop_resume_lands_on_uninterrupted_windowed_digest(self, tmp_path):
        reference = ImplicationService(_serve_config())
        while reference.ingest_step():
            pass
        want = {
            name: snapshot.window["digest"]
            for name, snapshot in reference.store.all().items()
        }

        interrupted = ImplicationService(
            _serve_config(), checkpoint_dir=str(tmp_path)
        )
        for _ in range(5):
            interrupted.ingest_step()
        interrupted.commit()

        resumed = ImplicationService(
            _serve_config(), checkpoint_dir=str(tmp_path)
        )
        assert resumed.restored_generation is not None
        assert resumed.cursor == interrupted.cursor
        for name, windowed in resumed.windowed.items():
            assert windowed.state_digest() == (
                interrupted.windowed[name].state_digest()
            )
        while resumed.ingest_step():
            pass
        got = {
            name: snapshot.window["digest"]
            for name, snapshot in resumed.store.all().items()
        }
        assert got == want

    def test_resume_refuses_window_shape_change(self, tmp_path):
        durable = ImplicationService(
            _serve_config(), checkpoint_dir=str(tmp_path)
        )
        durable.ingest_step()
        durable.commit()
        with pytest.raises(ValueError, match="shaped"):
            ImplicationService(
                _serve_config(window=None), checkpoint_dir=str(tmp_path)
            )
        with pytest.raises(ValueError, match="shaped"):
            ImplicationService(
                _serve_config(window=1024), checkpoint_dir=str(tmp_path)
            )


@pytest.mark.slow
class TestServeSubprocessWindowed:
    """The serve CLI end to end with --window: SIGTERM, resume, digest."""

    def _spawn(self, ckdir: Path, extra: list[str]):
        command = [
            sys.executable, "-m", "repro.cli", "serve",
            "--source", "profile:skewed", "--tuples", "30000",
            "--batch-size", "2048", "--num-bitmaps", "8",
            "--checkpoint-dir", str(ckdir), "--workers", "2",
            "--profiles", "support-only,noisy-confidence",
            "--window", "8192", "--window-generations", "4", *extra,
        ]
        env = {"PYTHONPATH": str(SRC_ROOT), "PATH": "/usr/bin:/bin"}
        import os

        env.update({k: v for k, v in os.environ.items() if k not in env})
        proc = subprocess.Popen(
            command, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, text=True,
        )
        listening = json.loads(proc.stdout.readline())
        assert listening["event"] == "listening", listening
        return proc, listening

    def _health(self, port: int) -> dict:
        connection = HTTPConnection("127.0.0.1", port, timeout=10)
        connection.request("GET", "/health")
        response = connection.getresponse()
        body = json.loads(response.read())
        connection.close()
        return body

    def test_sigterm_resume_reaches_uninterrupted_window_digest(self, tmp_path):
        proc, listening = self._spawn(tmp_path, [])
        port = listening["port"]
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                health = self._health(port)
                if health["cursor"] >= 10000:
                    break
                time.sleep(0.05)
            assert health["cursor"] >= 10000, "service never made progress"
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
        stopped = json.loads(out.strip().splitlines()[-1])
        assert stopped["status"] == "stopped"
        assert 0 < stopped["cursor"] < 30000
        assert stopped["window_digest"] is not None

        proc, listening = self._spawn(tmp_path, ["--exit-when-drained"])
        try:
            assert listening["resumed_generation"] is not None
            assert listening["cursor"] == stopped["cursor"]
            out, err = proc.communicate(timeout=240)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
        final = json.loads(out.strip().splitlines()[-1])
        assert final["cursor"] == 30000

        # The resumed windowed digest must equal an uninterrupted run's.
        config = ServeConfig(
            source="profile:skewed", tuples=30000, batch_size=2048,
            num_bitmaps=8, workers=2,
            profiles=("support-only", "noisy-confidence"),
            window=8192, window_generations=4,
        )
        reference = ImplicationService(config)
        while reference.ingest_step():
            pass
        want = reference.store.get("support-only").window["digest"]
        shutdown_runtime()
        assert final["window_digest"] == want
        assert final["digest"] == reference.store.get("support-only").digest
