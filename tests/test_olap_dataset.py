"""Tests for the simulated OLAP stream (the Section 6.2 substitute)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import ExactImplicationCounter
from repro.datasets.olap import (
    DEDICATED_E,
    TABLE3_CARDINALITIES,
    TABLE4_CHECKPOINTS,
    OlapStreamGenerator,
    workload_columns,
    workload_conditions,
)


def collect(total: int, seed: int = 0) -> dict[str, np.ndarray]:
    generator = OlapStreamGenerator(total, seed=seed)
    chunks = list(generator.chunks(chunk_size=total))
    assert len(chunks) == 1
    return chunks[0]


class TestShape:
    def test_table3_cardinalities_are_respected(self):
        chunk = collect(50_000)
        for name, cardinality in TABLE3_CARDINALITIES.items():
            values = chunk[name]
            assert values.min() >= 0
            assert values.max() < cardinality

    def test_small_dimensions_fully_realized(self):
        chunk = collect(50_000)
        assert len(np.unique(chunk["C"])) == 2
        assert len(np.unique(chunk["D"])) == 2
        assert len(np.unique(chunk["F"])) == TABLE3_CARDINALITIES["F"]

    def test_e_dimension_realizes_most_of_its_cardinality(self):
        """The stray layer spreads E across its full Table 3 range."""
        chunk = collect(200_000)
        assert len(np.unique(chunk["E"])) > TABLE3_CARDINALITIES["E"] * 0.3

    def test_chunking_covers_total(self):
        generator = OlapStreamGenerator(10_000, seed=1)
        sizes = [len(chunk["A"]) for chunk in generator.chunks(3000)]
        assert sum(sizes) == 10_000
        assert sizes == [3000, 3000, 3000, 1000]

    def test_validation(self):
        with pytest.raises(ValueError):
            OlapStreamGenerator(10)
        generator = OlapStreamGenerator(10_000)
        with pytest.raises(ValueError):
            next(generator.chunks(0))

    def test_reproducible(self):
        first = collect(20_000, seed=4)
        second = collect(20_000, seed=4)
        for name in first:
            assert np.array_equal(first[name], second[name])


class TestWorkloads:
    def test_workload_columns_shapes(self):
        chunk = collect(10_000)
        for workload in ("A", "B"):
            lhs, rhs = workload_columns(chunk, workload)
            assert lhs.dtype == np.uint64
            assert len(lhs) == len(rhs) == 10_000

    def test_workload_a_is_compound(self):
        chunk = collect(10_000)
        lhs_a, __ = workload_columns(chunk, "A")
        lhs_b, __ = workload_columns(chunk, "B")
        assert len(np.unique(lhs_a)) > len(np.unique(lhs_b))

    def test_unknown_workload(self):
        chunk = collect(2_000)
        with pytest.raises(ValueError):
            workload_columns(chunk, "C")

    def test_conditions_match_table5(self):
        conditions = workload_conditions(min_support=5, min_top_confidence=0.6)
        assert conditions.max_multiplicity == 2  # K = 2 (Table 5)
        assert conditions.top_c == 1
        assert conditions.min_support == 5

    def test_table4_checkpoints_shape(self):
        assert len(TABLE4_CHECKPOINTS) == 6
        tuples = [t for t, _, _ in TABLE4_CHECKPOINTS]
        assert tuples == sorted(tuples)
        assert TABLE4_CHECKPOINTS[-1][1] == 187_584


class TestImplicationStructure:
    def test_workload_counts_grow(self):
        """Exact workload-A counts must grow monotonically with the stream
        (the Table 4 property)."""
        total = 60_000
        generator = OlapStreamGenerator(total, seed=3)
        exact = ExactImplicationCounter(workload_conditions())
        counts = []
        for chunk in generator.chunks(12_000):
            lhs, rhs = workload_columns(chunk, "A")
            exact.update_batch(lhs, rhs)
            counts.append(exact.implication_count())
        # Near-monotone: sticky violations may retire the odd itemset, but
        # the Table 4 growth shape must dominate.
        for earlier, later in zip(counts, counts[1:]):
            assert later >= earlier * 0.95
        assert counts[-1] > counts[0] > 0

    def test_workload_b_population_bounded(self):
        """Workload B's qualifying population is the dedicated-E set."""
        total = 60_000
        generator = OlapStreamGenerator(total, seed=3)
        exact = ExactImplicationCounter(workload_conditions())
        for chunk in generator.chunks(20_000):
            lhs, rhs = workload_columns(chunk, "B")
            exact.update_batch(lhs, rhs)
        count = exact.implication_count()
        assert 0 < count <= DEDICATED_E

    def test_theta_08_reduces_counts(self):
        """Roughly a third of clean keys carry noise above 20%, so the
        theta=0.8 count must be clearly below the theta=0.6 count."""
        total = 40_000
        results = {}
        for theta in (0.6, 0.8):
            generator = OlapStreamGenerator(total, seed=6)
            exact = ExactImplicationCounter(
                workload_conditions(min_top_confidence=theta)
            )
            for chunk in generator.chunks(20_000):
                lhs, rhs = workload_columns(chunk, "A")
                exact.update_batch(lhs, rhs)
            results[theta] = exact.implication_count()
        assert results[0.8] < results[0.6] * 0.9

    def test_higher_support_reduces_counts(self):
        total = 40_000
        results = {}
        for sigma in (5, 50):
            generator = OlapStreamGenerator(total, seed=8)
            exact = ExactImplicationCounter(workload_conditions(min_support=sigma))
            for chunk in generator.chunks(20_000):
                lhs, rhs = workload_columns(chunk, "A")
                exact.update_batch(lhs, rhs)
            results[sigma] = exact.implication_count()
        assert results[50] < results[5]
