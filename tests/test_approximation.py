"""Tests for the (eps, delta) toolkit and fringe-sizing lemmas."""

from __future__ import annotations

import pytest

from repro.core.approximation import (
    MedianOfEstimators,
    bitmaps_for_accuracy,
    groups_for_confidence,
    minimum_estimable_count,
    required_fringe_size,
)
from repro.core.conditions import ImplicationConditions
from repro.datasets.synthetic import generate_dataset_one


class TestFringeSizing:
    def test_lemma2_values(self):
        """Lemma 2: F = -log2 q; 'counts greater than 1/16 of F0 correspond
        to a fringe zone of only four cells'."""
        assert required_fringe_size(1 / 16) == 4
        assert required_fringe_size(1 / 2) == 1
        assert required_fringe_size(1.0) == 1
        assert required_fringe_size(0.01) == 7

    def test_headroom(self):
        assert required_fringe_size(1 / 16, headroom=2) == 6

    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            required_fringe_size(0.0)
        with pytest.raises(ValueError):
            required_fringe_size(1.5)

    def test_minimum_estimable_count_paper_values(self):
        """Section 4.3.3: F=4 resolves 6.25% of F0; F=8 resolves 0.4%."""
        assert minimum_estimable_count(4, 100.0) == pytest.approx(6.25)
        assert minimum_estimable_count(8, 100.0) == pytest.approx(100 / 256)

    def test_minimum_estimable_validation(self):
        with pytest.raises(ValueError):
            minimum_estimable_count(0, 100.0)
        with pytest.raises(ValueError):
            minimum_estimable_count(4, -1.0)


class TestEpsDeltaKnobs:
    def test_groups_always_odd(self):
        for delta in (0.5, 0.1, 0.01, 0.001):
            assert groups_for_confidence(delta) % 2 == 1

    def test_groups_grow_with_confidence(self):
        assert groups_for_confidence(0.001) > groups_for_confidence(0.1)

    def test_groups_validation(self):
        with pytest.raises(ValueError):
            groups_for_confidence(0.0)
        with pytest.raises(ValueError):
            groups_for_confidence(1.0)

    def test_bitmaps_power_of_two(self):
        for epsilon in (0.3, 0.1, 0.05):
            m = bitmaps_for_accuracy(epsilon)
            assert m & (m - 1) == 0

    def test_bitmaps_match_known_point(self):
        # 0.78 / sqrt(64) ~ 0.0975: epsilon 0.1 needs 64 bitmaps.
        assert bitmaps_for_accuracy(0.1) == 64

    def test_bitmaps_validation(self):
        with pytest.raises(ValueError):
            bitmaps_for_accuracy(0.0)


class TestMedianOfEstimators:
    def test_groups_validation(self):
        with pytest.raises(ValueError):
            MedianOfEstimators(ImplicationConditions(), groups=0)

    def test_for_accuracy_wires_knobs(self):
        wrapper = MedianOfEstimators.for_accuracy(
            ImplicationConditions(), epsilon=0.2, delta=0.1
        )
        assert len(wrapper.groups) == groups_for_confidence(0.1)
        assert wrapper.groups[0].num_bitmaps == bitmaps_for_accuracy(0.2)

    def test_median_tames_worst_case(self):
        """Across trials, the max error of the median should not exceed the
        max error of a single estimator (usually it is far lower)."""
        single_max = 0.0
        median_max = 0.0
        for seed in range(6):
            data = generate_dataset_one(400, 200, c=1, seed=seed)
            actual = float(data.truth.satisfied)
            wrapper = MedianOfEstimators(
                data.conditions, groups=5, seed=seed, num_bitmaps=16
            )
            wrapper.update_batch(data.lhs, data.rhs)
            median_max = max(
                median_max, abs(wrapper.implication_count() - actual) / actual
            )
            # The first group alone is the "single estimator" comparator.
            single = wrapper.groups[0]
            single_max = max(
                single_max, abs(single.implication_count() - actual) / actual
            )
        assert median_max <= single_max + 0.05

    def test_all_estimates_exposed(self):
        wrapper = MedianOfEstimators(
            ImplicationConditions(max_multiplicity=1, min_top_confidence=1.0),
            groups=3,
            num_bitmaps=16,
        )
        wrapper.update("a", "b")
        wrapper.update("c", "b")
        wrapper.update("c", "b2")
        assert wrapper.supported_distinct_count() >= 0
        assert wrapper.nonimplication_count() >= 0
        assert wrapper.implication_count() >= 0

    def test_custom_factory(self):
        created = []

        def factory(seed):
            from repro.core.estimator import ImplicationCountEstimator

            estimator = ImplicationCountEstimator(
                ImplicationConditions(), num_bitmaps=8, seed=seed
            )
            created.append(seed)
            return estimator

        MedianOfEstimators(ImplicationConditions(), groups=4, estimator_factory=factory)
        assert len(created) == 4
        assert len(set(created)) == 4
