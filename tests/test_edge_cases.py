"""Failure injection and edge cases across the library.

Adversarial inputs a production deployment would meet: degenerate hash
functions, empty batches, extreme weights, unicode keys, pathological
geometry, interleaved merge-and-update sequences.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import ExactImplicationCounter
from repro.core.conditions import ImplicationConditions
from repro.core.estimator import ImplicationCountEstimator
from repro.core.nips import NIPSBitmap
from repro.sketch.hashing import HashFunction


class ConstantHash(HashFunction):
    """Worst-case 'hash': every item collides into one bitmap and cell."""

    seed = 0

    def mix(self, value: int) -> int:
        return 1  # lsb position 0, bitmap 1 (after routing bits: still 0)

    def hash_array(self, values):
        return np.full(len(values), 1, dtype=np.uint64)

    def __repr__(self) -> str:
        return "ConstantHash()"


def strict() -> ImplicationConditions:
    return ImplicationConditions(
        max_multiplicity=1, min_support=1, top_c=1, min_top_confidence=1.0
    )


class TestDegenerateHash:
    def test_constant_hash_cannot_crash_the_estimator(self):
        """A fully-colliding hash wrecks accuracy (necessarily) but must
        never corrupt state or raise."""
        estimator = ImplicationCountEstimator(
            strict(), num_bitmaps=8, hash_function=ConstantHash()
        )
        for item in range(500):
            estimator.update(item, item * 3)
        assert estimator.implication_count() >= 0.0
        assert estimator.nonimplication_count() >= 0.0
        profile = estimator.memory_profile()
        assert profile.stored_itemsets <= profile.itemset_budget

    def test_constant_hash_batch_path(self):
        estimator = ImplicationCountEstimator(
            strict(), num_bitmaps=8, hash_function=ConstantHash()
        )
        lhs = np.arange(500, dtype=np.uint64)
        estimator.update_batch(lhs, lhs * np.uint64(3))
        assert estimator.tuples_seen == 500


class TestEmptyAndExtremeInputs:
    def test_empty_batch_is_a_noop(self, one_to_one):
        estimator = ImplicationCountEstimator(one_to_one, num_bitmaps=8)
        estimator.update_batch(
            np.array([], dtype=np.uint64), np.array([], dtype=np.uint64)
        )
        assert estimator.tuples_seen == 0
        assert estimator.implication_count() == 0.0

    def test_huge_weights(self, one_to_one):
        counter = ExactImplicationCounter(one_to_one)
        counter.update("a", "b", weight=10**12)
        assert counter.tuples_seen == 10**12
        assert counter.implication_count() == 1.0

    def test_unicode_and_mixed_keys(self, one_to_one):
        estimator = ImplicationCountEstimator(one_to_one, num_bitmaps=8, seed=1)
        estimator.update("δεδομένα", "πηγή")
        estimator.update(("复合", 42), b"\x00bytes")
        estimator.update(3.14159, None)
        assert estimator.tuples_seen == 3

    def test_single_cell_bitmap(self):
        bitmap = NIPSBitmap(strict(), length=1, fringe_size=1)
        bitmap.update_at(0, "a", "b1")
        bitmap.update_at(0, "a", "b2")
        assert bitmap.leftmost_zero_nonimplication() == 1

    def test_fringe_wider_than_bitmap(self):
        bitmap = NIPSBitmap(strict(), length=4, fringe_size=16)
        for position in range(4):
            bitmap.update_at(position, f"a{position}", "b")
        assert bitmap.fringe_end == 3

    def test_estimator_handles_every_bitmap_saturated(self):
        conditions = ImplicationConditions(max_multiplicity=1, min_support=1)
        estimator = ImplicationCountEstimator(
            conditions, num_bitmaps=8, length=4, seed=2
        )
        for item in range(5000):
            estimator.update(item, 0)
            estimator.update(item, 1)  # everything violates
        assert estimator.nonimplication_count() > 0
        # R cannot exceed the bitmap length.
        for bitmap in estimator.bitmaps:
            assert bitmap.leftmost_zero_nonimplication() <= 4


class TestInterleavedMergeAndUpdate:
    def test_merge_then_continue_updating(self):
        conditions = strict()
        left = ImplicationCountEstimator(conditions, num_bitmaps=8, seed=5)
        right = left.spawn_sibling()
        left.update("a", "b")
        right.update("c", "d")
        left.merge(right)
        left.update("e", "f")
        left.update("a", "b2")  # violate a post-merge
        assert left.tuples_seen == 4
        assert left.nonimplication_count() >= 0.0

    def test_double_merge_of_same_source_double_counts_support(self):
        """Merging the SAME sketch twice is wrong by design (supports add);
        the distributed Coordinator avoids it by rebuilding from latest
        snapshots.  This test documents the behaviour."""
        conditions = ImplicationConditions(min_support=4)
        base = ImplicationCountEstimator(conditions, num_bitmaps=8, seed=6)
        other = base.spawn_sibling()
        other.update("a", "b", weight=2)

        def support_of_a(estimator):
            for bitmap in estimator.bitmaps:
                for cell in bitmap._cells.values():
                    if "a" in cell:
                        return cell["a"].support
            return 0

        base.merge(other)
        assert support_of_a(base) == 2
        base.merge(other)
        assert support_of_a(base) == 4  # double-counted, as documented


class TestSerializationEdgeCases:
    def test_unbounded_fringe_roundtrip(self):
        conditions = strict()
        estimator = ImplicationCountEstimator(
            conditions, num_bitmaps=8, fringe_size=None, seed=7
        )
        for item in range(200):
            estimator.update(item, item * 7)
        clone = ImplicationCountEstimator.from_bytes(estimator.to_bytes())
        assert clone.fringe_size is None
        assert clone.implication_count() == estimator.implication_count()

    def test_empty_estimator_roundtrip(self):
        estimator = ImplicationCountEstimator(strict(), num_bitmaps=8, seed=8)
        clone = ImplicationCountEstimator.from_bytes(estimator.to_bytes())
        assert clone.tuples_seen == 0
        assert clone.implication_count() == 0.0


class TestSlidingWindowEdges:
    def test_single_pane(self):
        from repro.core.incremental import SlidingWindowImplicationCounter

        template = ImplicationCountEstimator(strict(), num_bitmaps=8, seed=9)
        window = SlidingWindowImplicationCounter(template, window=10, panes=1)
        for index in range(100):
            window.update(index, index * 3)
        assert window.live_panes <= 3
        assert window.implication_count() >= 0.0

    def test_window_equals_one(self):
        from repro.core.incremental import SlidingWindowImplicationCounter

        template = ImplicationCountEstimator(strict(), num_bitmaps=8, seed=10)
        window = SlidingWindowImplicationCounter(template, window=1, panes=1)
        window.update("a", "b")
        window.update("c", "d")
        assert window.implication_count() >= 0.0
