"""Tests for the experiment runners behind the benches and the CLI."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ScaleSettings
from repro.experiments import (
    format_figure,
    run_aggregate_ablation,
    format_table4,
    format_workload_errors,
    run_dataset_one_figure,
    run_dataset_one_point,
    run_epsdelta_ablation,
    run_fringe_ablation,
    run_hash_family_ablation,
    run_heavy_hitter_ablation,
    run_sketch_comparison,
    run_table4,
    run_throughput,
    run_workload,
)

TINY = ScaleSettings(
    name="quick",
    trials=2,
    cardinalities=(120,),
    fractions=(0.5,),
    olap_tuples=20_000,
)


class TestDatasetOneExperiments:
    def test_point_runs_both_variants(self):
        point = run_dataset_one_point(
            150, 0.5, c=1, trials=2, num_bitmaps=16, base_seed=1
        )
        assert point.implied_count == 75
        assert point.bounded.trials == 2
        assert point.unbounded.trials == 2
        assert point.bounded.mean >= 0.0

    def test_figure_covers_grid(self):
        points = run_dataset_one_figure(1, TINY, num_bitmaps=16)
        assert len(points) == len(TINY.cardinalities) * len(TINY.fractions)

    def test_format_figure(self):
        points = run_dataset_one_figure(1, TINY, num_bitmaps=16)
        text = format_figure(points, "Figure 4")
        assert "Figure 4" in text
        assert "bounded err" in text
        assert "c=1" in text


class TestOlapExperiments:
    def test_run_workload_produces_checkpoints(self):
        run = run_workload(
            "A",
            20_000,
            min_support=5,
            min_top_confidence=0.6,
            checkpoints=[5_000, 10_000, 20_000],
            chunk_size=6_000,
            seed=1,
        )
        assert [row.tuples for row in run.rows] == [5_000, 10_000, 20_000]
        for row in run.rows:
            assert set(row.estimates) == {"nips", "ds", "ilc"}
            assert row.exact >= 0

    def test_exact_counts_grow(self):
        run = run_workload(
            "A",
            20_000,
            checkpoints=[5_000, 10_000, 20_000],
            algorithms=(),
            seed=2,
        )
        counts = [row.exact for row in run.rows]
        # Near-monotone: sticky violations may retire the odd itemset, but
        # the Table 4 growth shape must dominate.
        for earlier, later in zip(counts, counts[1:]):
            assert later >= earlier * 0.95
        assert counts[-1] > counts[0]

    def test_checkpoint_error_accessor(self):
        run = run_workload(
            "B", 10_000, checkpoints=[10_000], algorithms=("nips",), seed=3
        )
        row = run.rows[0]
        assert row.error("nips") >= 0.0
        with pytest.raises(KeyError):
            row.error("ds")

    def test_run_table4_and_format(self):
        runs = run_table4(20_000, seed=1)
        assert set(runs) == {"A", "B"}
        text = format_table4(runs, 20_000)
        assert "Table 4" in text
        assert "E->B paper" in text

    def test_format_workload_errors(self):
        runs = [
            run_workload("A", 10_000, checkpoints=[10_000], seed=1),
        ]
        text = format_workload_errors(runs)
        assert "NIPS/CI" in text
        assert "%" in text

    def test_shared_stream_chunks(self):
        from repro.datasets.olap import OlapStreamGenerator

        chunks = list(OlapStreamGenerator(10_000, seed=5).chunks(5_000))
        first = run_workload(
            "A", 10_000, checkpoints=[10_000], stream_chunks=chunks, seed=5
        )
        second = run_workload(
            "A", 10_000, checkpoints=[10_000], stream_chunks=chunks, seed=5
        )
        assert first.rows[0].exact == second.rows[0].exact


class TestAblations:
    def test_fringe_ablation_output(self):
        text = run_fringe_ablation(
            cardinality=300, fractions=(0.2, 0.8), fringe_sizes=(2, 4), trials=2
        )
        assert "F=2" in text and "F=4" in text

    def test_sketch_comparison_output(self):
        text = run_sketch_comparison(distinct=5_000, trials=2)
        assert "HyperLogLog" in text
        assert "KMV" in text

    def test_epsdelta_output(self):
        text = run_epsdelta_ablation(cardinality=200, trials=3, groups=3)
        assert "median of 3" in text

    def test_throughput(self):
        result, table = run_throughput(cardinality=300)
        assert result.batch_tps > 0
        assert result.scalar_tps > 0
        assert "tuples/s" in table

    def test_heavy_hitter_ablation_output(self):
        text = run_heavy_hitter_ablation(
            cardinality=400, fractions=(0.5,), k=32, trials=2
        )
        assert "HH coverage" in text
        assert "NIPS/CI err" in text

    def test_hash_family_ablation_output(self):
        text = run_hash_family_ablation(cardinality=300, trials=2)
        assert "splitmix" in text
        assert "tabulation" in text

    def test_aggregate_ablation_output(self):
        text = run_aggregate_ablation(num_itemsets=400, budgets=(128,), trials=2)
        assert "avg-mult err" in text
