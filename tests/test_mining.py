"""Tests for dependency discovery and synopsis planning."""

from __future__ import annotations

import random

import pytest

from repro.mining.dependencies import DependencyFinder, DependencyScore
from repro.mining.synopsis import plan_synopsis
from repro.stream.schema import Relation, Schema


def orders_relation(rows: int = 3000, noise: float = 0.0, seed: int = 0) -> Relation:
    """zip -> city is a (possibly noisy) dependency; customer and method
    are independent of everything."""
    rng = random.Random(seed)
    schema = Schema(["zip", "city", "customer", "method"])
    data = []
    for __ in range(rows):
        zip_code = rng.randrange(200)
        city = f"city-{zip_code % 60}"
        if noise and rng.random() < noise:
            city = f"typo-{rng.randrange(10)}"
        data.append(
            (
                zip_code,
                city,
                rng.randrange(150),
                rng.choice(["card", "cash", "wallet"]),
            )
        )
    return Relation(schema, data)


class TestDependencyScore:
    def test_strength(self):
        score = DependencyScore("a", "b", holding=95, supported=100)
        assert score.strength == pytest.approx(0.95)
        assert score.is_dependency(0.95)
        assert not score.is_dependency(0.99)

    def test_zero_supported(self):
        assert DependencyScore("a", "b", 0, 0).strength == 0.0

    def test_strength_clamped(self):
        # Sketch backends can overshoot holding slightly; clamp at 1.
        assert DependencyScore("a", "b", 110, 100).strength == 1.0


class TestDependencyFinder:
    def test_finds_the_clean_dependency(self):
        relation = orders_relation()
        finder = DependencyFinder(relation.schema, min_support=3)
        finder.process_rows(relation)
        found = finder.dependencies(threshold=0.95)
        assert ("zip", "city") in [(s.lhs, s.rhs) for s in found]

    def test_reverse_direction_is_weak(self):
        """city -> zip cannot hold: each city serves several zips."""
        relation = orders_relation()
        finder = DependencyFinder(relation.schema, min_support=3)
        finder.process_rows(relation)
        assert finder.score("city", "zip").strength < 0.2

    def test_independent_attributes_score_low(self):
        relation = orders_relation()
        finder = DependencyFinder(relation.schema, min_support=3)
        finder.process_rows(relation)
        assert finder.score("customer", "method").strength < 0.5

    def test_noise_tolerance(self):
        relation = orders_relation(noise=0.01, seed=2)
        strict = DependencyFinder(
            relation.schema, noise_tolerance=0.0, pairs=[("zip", "city")]
        )
        tolerant = DependencyFinder(
            relation.schema, noise_tolerance=0.10, pairs=[("zip", "city")]
        )
        strict.process_rows(relation)
        tolerant.process_rows(relation)
        assert tolerant.score("zip", "city").strength > strict.score(
            "zip", "city"
        ).strength

    def test_scores_sorted_strongest_first(self):
        relation = orders_relation()
        finder = DependencyFinder(relation.schema)
        finder.process_rows(relation)
        strengths = [score.strength for score in finder.scores()]
        assert strengths == sorted(strengths, reverse=True)

    def test_pair_restriction_and_validation(self):
        schema = Schema(["a", "b", "c"])
        finder = DependencyFinder(schema, pairs=[("a", "b")])
        finder.process_row((1, 2, 3))
        assert finder.score("a", "b").supported >= 0
        with pytest.raises(KeyError):
            finder.score("b", "a")
        with pytest.raises(KeyError):
            DependencyFinder(schema, pairs=[("a", "missing")])

    def test_backend_validation(self):
        with pytest.raises(ValueError):
            DependencyFinder(Schema(["a", "b"]), backend="quantum")
        with pytest.raises(ValueError):
            DependencyFinder(Schema(["a", "b"]), noise_tolerance=1.0)

    def test_sketch_backend_agrees_on_the_verdict(self):
        relation = orders_relation(rows=5000)
        exact = DependencyFinder(relation.schema, pairs=[("zip", "city")])
        sketch = DependencyFinder(
            relation.schema,
            pairs=[("zip", "city")],
            backend="sketch",
            fringe_size=8,
            seed=3,
        )
        exact.process_rows(relation)
        sketch.process_rows(relation)
        assert exact.score("zip", "city").is_dependency(0.9)
        assert sketch.score("zip", "city").is_dependency(0.8)


class TestSynopsisPlan:
    def scored(self, lhs, rhs, strength):
        return DependencyScore(lhs, rhs, holding=strength * 100, supported=100)

    def test_groups_connected_components(self):
        plan = plan_synopsis(
            ["zip", "city", "state", "customer", "method"],
            [
                self.scored("zip", "city", 0.97),
                self.scored("city", "state", 0.99),
                self.scored("customer", "method", 0.1),
            ],
            threshold=0.9,
        )
        assert plan.joint_groups == (("city", "state", "zip"),)
        assert set(plan.independent_attributes) == {"customer", "method"}
        assert plan.group_of("state") == ("city", "state", "zip")

    def test_no_edges_means_all_independent(self):
        plan = plan_synopsis(["a", "b"], [], threshold=0.9)
        assert plan.joint_groups == ()
        assert set(plan.independent_attributes) == {"a", "b"}

    def test_evidence_recorded(self):
        score = self.scored("a", "b", 0.95)
        plan = plan_synopsis(["a", "b"], [score], threshold=0.9)
        assert plan.evidence == (score,)
        assert "a -> b" in plan.describe()

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_synopsis([], [])
        with pytest.raises(ValueError):
            plan_synopsis(["a"], [], threshold=0.0)
        with pytest.raises(KeyError):
            plan_synopsis(["a"], [self.scored("a", "ghost", 0.99)])
        with pytest.raises(KeyError):
            plan_synopsis(["a"], []).group_of("ghost")

    def test_end_to_end_with_finder(self):
        relation = orders_relation()
        finder = DependencyFinder(relation.schema, min_support=3)
        finder.process_rows(relation)
        plan = plan_synopsis(
            list(relation.schema.attributes), finder.scores(), threshold=0.9
        )
        assert ("city", "zip") in plan.joint_groups
        assert "customer" in plan.independent_attributes
