"""Tests for sketch merging (ItemsetState, NIPSBitmap, estimator)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.conditions import ImplicationConditions, ItemsetStatus
from repro.core.estimator import ImplicationCountEstimator
from repro.core.nips import NIPSBitmap
from repro.core.tracker import ItemsetState
from repro.datasets.synthetic import generate_dataset_one


def strict() -> ImplicationConditions:
    return ImplicationConditions(
        max_multiplicity=1, min_support=1, top_c=1, min_top_confidence=1.0
    )


class TestStateMerge:
    def test_supports_add(self):
        conditions = ImplicationConditions(min_support=10)
        left, right = ItemsetState(), ItemsetState()
        left.observe("b", conditions, weight=4)
        right.observe("b", conditions, weight=3)
        left.merge(right, conditions)
        assert left.support == 7
        assert left.partners == {"b": 7}

    def test_violation_propagates(self):
        conditions = strict()
        left, right = ItemsetState(), ItemsetState()
        left.observe("b1", conditions)
        right.observe("b1", conditions)
        right.observe("b2", conditions)  # violated on the right
        assert left.merge(right, conditions) is ItemsetStatus.VIOLATED
        assert left.violated

    def test_merged_totals_can_prove_new_violation(self):
        """Neither side violates alone; the combined multiplicity does."""
        conditions = ImplicationConditions(max_multiplicity=1, min_support=1)
        left, right = ItemsetState(), ItemsetState()
        left.observe("b1", conditions)
        right.observe("b2", conditions)
        assert not left.violated and not right.violated
        assert left.merge(right, conditions) is ItemsetStatus.VIOLATED

    def test_merged_confidence_evaluated(self):
        conditions = ImplicationConditions(
            min_support=4, top_c=1, min_top_confidence=0.9
        )
        left, right = ItemsetState(), ItemsetState()
        # Each side: 2 tuples of one partner — below support, no violation.
        left.observe("b1", conditions, weight=2)
        right.observe("b2", conditions, weight=2)
        # Merged: support 4, top-1 confidence 0.5 < 0.9.
        assert left.merge(right, conditions) is ItemsetStatus.VIOLATED

    def test_partner_bound_respected_during_merge(self):
        conditions = ImplicationConditions(max_multiplicity=2, min_support=100)
        left, right = ItemsetState(), ItemsetState()
        left.observe("b1", conditions)
        left.observe("b2", conditions)
        right.observe("b3", conditions)
        right.observe("b4", conditions)
        left.merge(right, conditions)
        assert left.multiplicity_exceeded
        assert left.partners is None  # memory freed


class TestBitmapMerge:
    def make(self, seed=1):
        return NIPSBitmap(strict(), length=32, fringe_size=4, seed=seed)

    def test_value_one_unions(self):
        left, right = self.make(), self.make(seed=1)
        right.hash_function = left.hash_function
        left.update_at(2, "a", "b1")
        left.update_at(2, "a", "b2")  # cell 2 decided on the left
        right.update_at(1, "c", "b1")
        left.merge(right)
        assert left.leftmost_zero_nonimplication() == 0
        assert 2 in left._value_one
        assert left.stored_itemsets() == 1  # "a"'s memory stays freed; c kept

    def test_incompatible_rejected(self):
        conditions = strict()
        left = NIPSBitmap(conditions, length=32, fringe_size=4, seed=1)
        with pytest.raises(ValueError):
            left.merge(NIPSBitmap(conditions, length=16, fringe_size=4, seed=1))
        other_conditions = ImplicationConditions(min_support=9)
        sibling = NIPSBitmap(
            other_conditions, length=32, fringe_size=4,
            hash_function=left.hash_function,
        )
        with pytest.raises(ValueError):
            left.merge(sibling)

    def test_fringe_advances_to_further_side(self):
        left, right = self.make(), self.make()
        right.hash_function = left.hash_function
        right.update_at(10, "far", "b")  # right fringe floats to [7, 10]
        left.update_at(0, "near", "b")
        left.merge(right)
        assert left.fringe_start == 7
        assert left.stored_itemsets() == 1  # "near" was fixated away

    def test_same_itemset_merges_counts(self):
        conditions = ImplicationConditions(min_support=4)
        left = NIPSBitmap(conditions, length=32, fringe_size=4, seed=2)
        right = NIPSBitmap(
            conditions, length=32, fringe_size=4,
            hash_function=left.hash_function,
        )
        left.update_at(0, "a", "b", weight=2)
        right.update_at(0, "a", "b", weight=3)
        left.merge(right)
        assert left._cells[0]["a"].support == 5
        assert left.leftmost_zero_supported() == 1

    def test_tuples_seen_accumulates(self):
        left, right = self.make(), self.make()
        right.hash_function = left.hash_function
        left.update_at(0, "a", "b", weight=7)
        right.update_at(1, "c", "d", weight=5)
        left.merge(right)
        assert left.tuples_seen == 12


class TestEstimatorMerge:
    def test_incompatible_rejected(self):
        base = ImplicationCountEstimator(strict(), num_bitmaps=16, seed=1)
        with pytest.raises(ValueError):
            base.merge(ImplicationCountEstimator(strict(), num_bitmaps=32, seed=1))
        with pytest.raises(ValueError):
            base.merge(ImplicationCountEstimator(strict(), num_bitmaps=16, seed=2))

    def test_sharded_by_itemset_matches_central(self):
        """When the stream is sharded by LHS itemset, each itemset's whole
        history lives on one node, so the merged estimate must be very
        close to a single estimator that saw everything."""
        data = generate_dataset_one(600, 300, c=1, seed=4)
        central = ImplicationCountEstimator(data.conditions, seed=9)
        shards = [central.spawn_sibling() for _ in range(4)]
        shard_of = (data.lhs % np.uint64(4)).astype(np.int64)
        for index, shard in enumerate(shards):
            mask = shard_of == index
            shard.update_batch(data.lhs[mask], data.rhs[mask])
        central.update_batch(data.lhs, data.rhs)

        merged = central.spawn_sibling()
        for shard in shards:
            merged.merge(shard)
        assert merged.tuples_seen == central.tuples_seen
        assert merged.nonimplication_count() == pytest.approx(
            central.nonimplication_count(), rel=0.35
        )
        assert merged.implication_count() == pytest.approx(
            central.implication_count(), rel=0.35
        )
        # And both land near the ground truth.
        assert merged.implication_count() == pytest.approx(
            data.truth.satisfied, rel=0.4
        )

    def test_merge_accumulates_tuples(self):
        base = ImplicationCountEstimator(strict(), num_bitmaps=16, seed=3)
        other = base.spawn_sibling()
        base.update("a", "b")
        other.update("c", "d")
        base.merge(other)
        assert base.tuples_seen == 2

    def test_merge_with_empty_is_identity(self):
        data = generate_dataset_one(200, 100, c=1, seed=6)
        estimator = ImplicationCountEstimator(data.conditions, seed=2)
        estimator.update_batch(data.lhs, data.rhs)
        before = estimator.implication_count()
        estimator.merge(estimator.spawn_sibling())
        assert estimator.implication_count() == before
