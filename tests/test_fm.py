"""Unit tests for Flajolet–Martin counting (FMBitmap and PCSA)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketch.fm import FM_PHI, FMBitmap, PCSA, pcsa_scale


class TestFMBitmap:
    def test_empty_bitmap(self):
        bitmap = FMBitmap(seed=1)
        assert bitmap.leftmost_zero() == 0
        assert bitmap.estimate(correct_bias=False) == 1.0

    def test_duplicates_do_not_change_state(self):
        bitmap = FMBitmap(seed=1)
        bitmap.add("item")
        state_once = bitmap.leftmost_zero()
        for _ in range(100):
            bitmap.add("item")
        assert bitmap.leftmost_zero() == state_once

    def test_set_and_read_cells(self):
        bitmap = FMBitmap(length=8, seed=1)
        bitmap.set_cell(0)
        bitmap.set_cell(1)
        assert bitmap.cell(0) == 1
        assert bitmap.cell(2) == 0
        assert bitmap.leftmost_zero() == 2

    def test_cell_bounds(self):
        bitmap = FMBitmap(length=8, seed=1)
        with pytest.raises(IndexError):
            bitmap.set_cell(8)
        with pytest.raises(IndexError):
            bitmap.cell(-1)

    def test_length_validation(self):
        with pytest.raises(ValueError):
            FMBitmap(length=0)
        with pytest.raises(ValueError):
            FMBitmap(length=65)

    def test_estimate_order_of_magnitude(self):
        bitmap = FMBitmap(seed=3)
        n = 10_000
        for item in range(n):
            bitmap.add(item)
        # A single bitmap resolves only to a power of two: allow 2.5x.
        assert n / 2.5 <= bitmap.estimate() <= n * 2.5

    def test_merge_is_union(self):
        left = FMBitmap(seed=5)
        right = FMBitmap(seed=5, hash_function=left.hash_function)
        union = FMBitmap(seed=5, hash_function=left.hash_function)
        for item in range(200):
            (left if item % 2 else right).add(item)
            union.add(item)
        left.merge(right)
        assert left.leftmost_zero() == union.leftmost_zero()

    def test_merge_incompatible_rejected(self):
        with pytest.raises(ValueError):
            FMBitmap(length=8, seed=1).merge(FMBitmap(length=16, seed=1))
        with pytest.raises(ValueError):
            FMBitmap(seed=1).merge(FMBitmap(seed=2))

    def test_copy_is_independent(self):
        bitmap = FMBitmap(seed=1)
        clone = bitmap.copy()
        bitmap.add("x")
        assert clone.leftmost_zero() == 0 or clone.leftmost_zero() <= bitmap.leftmost_zero()
        assert clone._bits != bitmap._bits or clone.leftmost_zero() == bitmap.leftmost_zero()


class TestPCSA:
    def test_power_of_two_bitmaps_required(self):
        with pytest.raises(ValueError):
            PCSA(num_bitmaps=48)

    def test_accuracy_with_64_bitmaps(self):
        n = 50_000
        sketch = PCSA(num_bitmaps=64, seed=2)
        sketch.add_encoded_array(
            np.random.default_rng(0).integers(0, 1 << 62, size=n, dtype=np.uint64)
        )
        assert abs(sketch.estimate() - n) / n < 0.25

    def test_small_range_correction_handles_tiny_counts(self):
        n = 30  # far fewer items than bitmaps
        errors = []
        for seed in range(10):
            sketch = PCSA(num_bitmaps=64, seed=seed)
            for item in range(n):
                sketch.add((seed, item))
            errors.append(abs(sketch.estimate() - n) / n)
        assert sum(errors) / len(errors) < 0.5
        # Without the correction the estimate is catastrophically biased.
        uncorrected = PCSA(num_bitmaps=64, seed=0)
        for item in range(n):
            uncorrected.add(item)
        assert uncorrected.estimate(small_range_correction=False) > 2 * n

    def test_batch_matches_scalar(self):
        scalar = PCSA(num_bitmaps=16, seed=4)
        batch = PCSA(num_bitmaps=16, seed=4)
        values = np.random.default_rng(1).integers(
            0, 1 << 62, size=500, dtype=np.uint64
        )
        for value in values:
            scalar.add_hashed(scalar.hash_function.mix(int(value)))
        batch.add_encoded_array(values)
        assert scalar._bitmaps == batch._bitmaps

    def test_update_many_counts_distinct(self):
        sketch = PCSA(num_bitmaps=16, seed=0)
        sketch.update_many(["a", "b", "a", "b", "a"])
        duplicate_free = PCSA(num_bitmaps=16, seed=0)
        duplicate_free.update_many(["a", "b"])
        assert sketch._bitmaps == duplicate_free._bitmaps

    def test_merge(self):
        base = PCSA(num_bitmaps=16, seed=9)
        other = PCSA(num_bitmaps=16, seed=9, hash_function=base.hash_function)
        union = PCSA(num_bitmaps=16, seed=9, hash_function=base.hash_function)
        for item in range(1000):
            (base if item % 2 else other).add(item)
            union.add(item)
        base.merge(other)
        assert base._bitmaps == union._bitmaps

    def test_merge_incompatible_rejected(self):
        with pytest.raises(ValueError):
            PCSA(num_bitmaps=16, seed=0).merge(PCSA(num_bitmaps=32, seed=0))


class TestPcsaScale:
    def test_zero_position_small_range(self):
        # mean R = 0 should estimate ~0 distinct items after correction.
        assert pcsa_scale(64, 0.0) == 0.0

    def test_monotone_in_position(self):
        values = [pcsa_scale(64, x / 4) for x in range(1, 40)]
        assert values == sorted(values)

    def test_raw_formula_without_corrections(self):
        raw = pcsa_scale(64, 3.0, correct_bias=False, small_range_correction=False)
        assert raw == 64 * 8.0

    def test_phi_correction_scales(self):
        corrected = pcsa_scale(1, 10.0, small_range_correction=False)
        assert corrected == pytest.approx(2.0 ** 10 / FM_PHI)
