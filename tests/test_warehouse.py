"""Tests for the offline warehouse monitor."""

from __future__ import annotations

import pytest

from repro.core.queries import DistinctCountQuery, ImplicationQuery
from repro.datasets.network import table1_relation
from repro.offline import WarehouseMonitor


@pytest.fixture
def monitor() -> WarehouseMonitor:
    return WarehouseMonitor(table1_relation().schema, backend="exact")


def one_to_one_view() -> ImplicationQuery:
    return ImplicationQuery.one_to_one(
        ["destination"], ["source"], name="single-source destinations"
    )


class TestRefresh:
    def test_counts_and_deltas(self, monitor):
        monitor.register_view(one_to_one_view())
        rows = table1_relation().rows
        first = monitor.refresh(rows[:4])
        second = monitor.refresh(rows[4:])
        assert first.batch_rows == 4
        assert second.total_rows == 8
        assert second.counts["single-source destinations"] == 2.0
        assert (
            first.counts["single-source destinations"]
            + second.deltas["single-source destinations"]
            == 2.0
        )

    def test_deltas_can_be_negative(self, monitor):
        """A batch can *retire* itemsets (sticky violations) — the report
        shows it as a negative delta."""
        monitor.register_view(one_to_one_view())
        monitor.refresh([("S9", "D9", "WWW", "Morning")])
        report = monitor.refresh([("S8", "D9", "WWW", "Noon")])
        assert report.deltas["single-source destinations"] == -1.0
        assert not report.grew("single-source destinations")

    def test_grew_predicate(self, monitor):
        monitor.register_view(one_to_one_view())
        report = monitor.refresh(table1_relation().rows)
        assert report.grew("single-source destinations", by_at_least=2.0)

    def test_history_accumulates(self, monitor):
        name = monitor.register_view(one_to_one_view())
        for row in table1_relation().rows:
            monitor.refresh([row])
        history = monitor.history(name)
        assert len(history) == 8
        assert history[-1] == (8, 2.0)
        assert [tuples for tuples, __ in history] == list(range(1, 9))

    def test_refresh_dicts(self, monitor):
        name = monitor.register_view(one_to_one_view())
        monitor.refresh_dicts(table1_relation().dicts())
        assert monitor.count(name) == 2.0


class TestRegistration:
    def test_views_locked_after_first_refresh(self, monitor):
        monitor.register_view(one_to_one_view())
        monitor.refresh(table1_relation().rows[:1])
        with pytest.raises(RuntimeError):
            monitor.register_view(DistinctCountQuery(["source"]))

    def test_multiple_views_one_scan(self, monitor):
        monitor.register_view(one_to_one_view())
        monitor.register_view(DistinctCountQuery(["source"], name="sources"))
        report = monitor.refresh(table1_relation().rows)
        assert report.counts["sources"] == 3.0
        assert set(monitor.views) == {"single-source destinations", "sources"}

    def test_unknown_history(self, monitor):
        with pytest.raises(KeyError):
            monitor.history("ghost")


class TestSketchBackend:
    def test_sketch_backed_views(self):
        monitor = WarehouseMonitor(
            table1_relation().schema, backend="sketch", num_bitmaps=16, seed=1
        )
        name = monitor.register_view(one_to_one_view())
        for __ in range(10):
            monitor.refresh(table1_relation().rows)
        assert monitor.count(name) >= 0.0
