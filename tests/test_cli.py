"""Tests for the repro-experiments command line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "quick")
    monkeypatch.setenv("REPRO_TRIALS", "1")


class TestCli:
    def test_requires_experiment(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["figure99"])

    def test_ablation_sketches(self, capsys):
        assert main(["ablation-sketches"]) == 0
        out = capsys.readouterr().out
        assert "F0 sketch comparison" in out

    def test_ablation_epsdelta(self, capsys):
        assert main(["ablation-epsdelta"]) == 0
        assert "median" in capsys.readouterr().out

    def test_throughput(self, capsys):
        assert main(["throughput"]) == 0
        assert "tuples/s" in capsys.readouterr().out

    def test_workload_flag_parsed(self):
        # Only validates argparse wiring; figure7 itself is bench-scale and
        # covered by tests/test_experiments.py at tiny checkpoints.
        with pytest.raises(SystemExit):
            main(["figure7", "--workload", "Z"])
