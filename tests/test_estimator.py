"""Tests for the stochastic-averaging NIPS/CI estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import ExactImplicationCounter
from repro.core.conditions import ImplicationConditions
from repro.core.estimator import ImplicationCountEstimator
from repro.datasets.synthetic import generate_dataset_one

from conftest import random_pairs


class TestConstruction:
    def test_power_of_two_bitmaps(self, one_to_one):
        with pytest.raises(ValueError):
            ImplicationCountEstimator(one_to_one, num_bitmaps=12)

    def test_length_validation(self, one_to_one):
        with pytest.raises(ValueError):
            ImplicationCountEstimator(one_to_one, length=0)

    def test_reproducible_from_seed(self, one_to_one):
        pairs = random_pairs(200, 2, seed=3)
        first = ImplicationCountEstimator(one_to_one, seed=42)
        second = ImplicationCountEstimator(one_to_one, seed=42)
        first.update_many(pairs)
        second.update_many(pairs)
        assert first.implication_count() == second.implication_count()
        assert first.nonimplication_count() == second.nonimplication_count()

    def test_expected_relative_error(self, one_to_one):
        estimator = ImplicationCountEstimator(one_to_one, num_bitmaps=64)
        assert estimator.expected_relative_error() == pytest.approx(0.0975)

    def test_update_many_weights_match_expanded_stream(self, one_to_one):
        """A weighted pair must act exactly like that many repeated tuples."""
        pairs = random_pairs(150, 2, seed=6)
        weights = [1 + (i % 4) for i in range(len(pairs))]
        weighted = ImplicationCountEstimator(one_to_one, num_bitmaps=16, seed=9)
        expanded = ImplicationCountEstimator(one_to_one, num_bitmaps=16, seed=9)
        weighted.update_many(pairs, weights)
        expanded.update_many(
            pair for pair, weight in zip(pairs, weights) for _ in range(weight)
        )
        assert weighted.tuples_seen == expanded.tuples_seen == sum(weights)
        for left, right in zip(weighted.bitmaps, expanded.bitmaps):
            assert left.fringe_start == right.fringe_start
            assert left._value_one == right._value_one
        assert weighted.implication_count() == expanded.implication_count()
        assert weighted.nonimplication_count() == expanded.nonimplication_count()

    def test_update_many_weight_length_mismatch_rejected(self, one_to_one):
        """A short (or long) weights iterable must raise, not drop tuples."""
        estimator = ImplicationCountEstimator(one_to_one, seed=1)
        with pytest.raises(ValueError):
            estimator.update_many([(1, 2), (3, 4)], weights=[1])
        with pytest.raises(ValueError):
            estimator.update_many([(1, 2)], weights=[1, 2])


class TestBatchScalarEquivalence:
    """The vectorized path must be bit-identical to the scalar path."""

    @pytest.mark.parametrize("fringe_size", [4, None])
    def test_identical_bitmap_state(self, fringe_size):
        conditions = ImplicationConditions(
            max_multiplicity=2, min_support=3, top_c=1, min_top_confidence=0.7
        )
        rng = np.random.default_rng(7)
        lhs = rng.integers(0, 300, size=5000).astype(np.uint64)
        rhs = rng.integers(0, 50, size=5000).astype(np.uint64)

        scalar = ImplicationCountEstimator(
            conditions, num_bitmaps=16, fringe_size=fringe_size, seed=1
        )
        batch = ImplicationCountEstimator(
            conditions, num_bitmaps=16, fringe_size=fringe_size, seed=1
        )
        for a, b in zip(lhs.tolist(), rhs.tolist()):
            scalar.update(a, b)
        batch.update_batch(lhs, rhs)

        for left, right in zip(scalar.bitmaps, batch.bitmaps):
            assert left.fringe_start == right.fringe_start
            assert left._value_one == right._value_one
            assert left.leftmost_zero_supported() == right.leftmost_zero_supported()
        assert scalar.implication_count() == batch.implication_count()

    def test_batch_shape_mismatch_rejected(self, one_to_one):
        estimator = ImplicationCountEstimator(one_to_one)
        with pytest.raises(ValueError):
            estimator.update_batch(np.zeros(3, np.uint64), np.zeros(4, np.uint64))

    def test_batch_split_invariance(self, one_to_one):
        """Feeding one big batch or many small ones gives identical state."""
        rng = np.random.default_rng(8)
        lhs = rng.integers(0, 500, size=3000).astype(np.uint64)
        rhs = rng.integers(0, 10, size=3000).astype(np.uint64)
        whole = ImplicationCountEstimator(one_to_one, num_bitmaps=16, seed=2)
        pieces = ImplicationCountEstimator(one_to_one, num_bitmaps=16, seed=2)
        whole.update_batch(lhs, rhs)
        for start in range(0, 3000, 700):
            pieces.update_batch(lhs[start : start + 700], rhs[start : start + 700])
        assert whole.implication_count() == pieces.implication_count()
        assert whole.nonimplication_count() == pieces.nonimplication_count()


class TestAccuracy:
    def test_tracks_exact_on_dataset_one(self):
        data = generate_dataset_one(1000, 500, c=1, seed=3)
        exact = ExactImplicationCounter(data.conditions)
        exact.update_batch(data.lhs, data.rhs)
        assert exact.implication_count() == data.truth.satisfied

        estimator = ImplicationCountEstimator(data.conditions, seed=5)
        estimator.update_batch(data.lhs, data.rhs)
        error = abs(estimator.implication_count() - data.truth.satisfied)
        assert error / data.truth.satisfied < 0.35  # single trial, m=64

    def test_mean_error_within_envelope(self):
        """Averaged over trials the error should approach the paper's ~10%."""
        errors = []
        for seed in range(8):
            data = generate_dataset_one(600, 300, c=1, seed=seed)
            estimator = ImplicationCountEstimator(data.conditions, seed=seed + 50)
            estimator.update_batch(data.lhs, data.rhs)
            errors.append(
                abs(estimator.implication_count() - data.truth.satisfied)
                / data.truth.satisfied
            )
        assert sum(errors) / len(errors) < 0.25

    def test_nonimplication_and_supported_consistent(self):
        data = generate_dataset_one(800, 400, c=1, seed=11)
        estimator = ImplicationCountEstimator(data.conditions, seed=4)
        estimator.update_batch(data.lhs, data.rhs)
        supported = estimator.supported_distinct_count()
        nonimpl = estimator.nonimplication_count()
        assert supported >= nonimpl  # R_F0sup >= R_Sbar per bitmap
        assert estimator.implication_count() == pytest.approx(
            max(supported - nonimpl, 0.0)
        )

    def test_bias_correction_flag(self, one_to_one):
        corrected = ImplicationCountEstimator(one_to_one, seed=1)
        verbatim = ImplicationCountEstimator(
            one_to_one, seed=1, bias_correction=False
        )
        pairs = random_pairs(500, 1, seed=2)
        corrected.update_many(pairs)
        verbatim.update_many(pairs)
        # Same bitmaps, different readout arithmetic.
        assert corrected.supported_distinct_count() != pytest.approx(
            verbatim.supported_distinct_count()
        )


class TestMemory:
    def test_bounded_fringe_memory_stays_within_budget(self):
        data = generate_dataset_one(2000, 1000, c=2, seed=1)
        estimator = ImplicationCountEstimator(data.conditions, seed=2)
        estimator.update_batch(data.lhs, data.rhs)
        profile = estimator.memory_profile()
        assert profile.itemset_budget == (2 ** 4 - 1) * 2 * 64
        assert profile.stored_itemsets <= profile.itemset_budget
        assert 0.0 <= profile.utilization <= 1.0

    def test_sketch_memory_far_below_exact(self):
        data = generate_dataset_one(2000, 1000, c=2, seed=1)
        estimator = ImplicationCountEstimator(data.conditions, seed=2)
        exact = ExactImplicationCounter(data.conditions)
        estimator.update_batch(data.lhs, data.rhs)
        exact.update_batch(data.lhs, data.rhs)
        sketch_counters = sum(b.counter_count() for b in estimator.bitmaps)
        assert sketch_counters < exact.counter_count() / 3

    def test_minimum_estimable_nonimplication(self, one_to_one):
        estimator = ImplicationCountEstimator(one_to_one, fringe_size=4)
        assert estimator.minimum_estimable_nonimplication(1600.0) == 100.0
        unbounded = ImplicationCountEstimator(one_to_one, fringe_size=None)
        assert unbounded.minimum_estimable_nonimplication(1600.0) == 0.0


class TestSiblings:
    def test_spawn_sibling_shares_hash_and_geometry(self, one_to_one):
        estimator = ImplicationCountEstimator(one_to_one, num_bitmaps=16, seed=9)
        sibling = estimator.spawn_sibling()
        assert sibling.hash_function is estimator.hash_function
        assert sibling.num_bitmaps == estimator.num_bitmaps
        assert sibling.tuples_seen == 0
        # Same stream -> identical readouts, because placement is shared.
        pairs = random_pairs(100, 1, seed=1)
        estimator_fresh = estimator.spawn_sibling()
        for a, b in pairs:
            sibling.update(a, b)
            estimator_fresh.update(a, b)
        assert sibling.implication_count() == estimator_fresh.implication_count()
