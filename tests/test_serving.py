"""Tests for the serving layer: sources, service core, HTTP, durability.

The concurrency tests pin the headline guarantees: reads during active
ingest are internally consistent (every observed digest equals an offline
single pass over that snapshot's stream prefix — never a torn state), a
SIGTERM'd service resumes to the bit-for-bit digest of an uninterrupted
run, and ``/metrics`` never 500s under concurrent load.
"""

from __future__ import annotations

import io
import json
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest

import repro
from repro.core.conditions import ImplicationConditions
from repro.core.estimator import ImplicationCountEstimator
from repro.core.serialize import estimator_state_digest
from repro.engine import shutdown_runtime
from repro.observability import MetricsRegistry, set_registry
from repro.serving import (
    ArraySource,
    ImplicationService,
    ProfileSource,
    PushBacklogFull,
    PushSource,
    ServeConfig,
    make_source,
    offline_reference,
)
from repro.serving.aio import build_async_server
from repro.serving.http import build_server
from repro.serving.sources import PENDING
from repro.verify.streams import generate_stream

SRC_ROOT = Path(repro.__file__).resolve().parents[1]

#: Both HTTP front-ends, for parametrized coverage — they share the
#: Router, and these tests hold them to identical observable behavior.
FRONTENDS = {"threaded": build_server, "asyncio": build_async_server}


@pytest.fixture()
def registry():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


def small_conditions() -> ImplicationConditions:
    return ImplicationConditions(min_support=2)


def get(port: int, path: str, timeout: float = 10.0):
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=timeout
        ) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


def post(
    port: int,
    path: str,
    body: bytes,
    content_type: str = "application/json",
    timeout: float = 10.0,
):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=body,
        method="POST",
        headers={"Content-Type": content_type},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


def serve_on_thread(build, service):
    """Start a front-end for ``service``; returns (server, join-less stop)."""
    server = build(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()

    def stop() -> None:
        server.shutdown()
        server.server_close()

    return server, stop


class TestSources:
    def test_profile_source_is_deterministic_and_random_access(self):
        source = ProfileSource("skewed", seed=3, batch_size=100, tuples=350)
        again = ProfileSource("skewed", seed=3, batch_size=100, tuples=350)
        third = source.batch(3)
        assert len(third[0]) == 50  # short final batch
        assert source.batch(4) is None
        # Random access: batch 2 equals batch 2 regardless of order.
        lhs_a, rhs_a = source.batch(2)
        lhs_b, rhs_b = again.batch(2)
        np.testing.assert_array_equal(lhs_a, lhs_b)
        np.testing.assert_array_equal(rhs_a, rhs_b)
        # Distinct batches differ (per-batch derived seeds).
        assert not np.array_equal(source.batch(0)[0], source.batch(1)[0])

    def test_profile_source_infinite_without_tuples(self):
        source = ProfileSource("uniform", batch_size=10)
        assert source.batch(10_000) is not None

    def test_array_source_slices_absolutely(self):
        lhs, rhs = generate_stream("uniform", 1, 25)
        source = ArraySource(lhs, rhs, batch_size=10)
        np.testing.assert_array_equal(source.batch(1)[0], lhs[10:20])
        assert len(source.batch(2)[0]) == 5
        assert source.batch(3) is None

    def test_array_source_description_is_content_addressed(self):
        lhs, rhs = generate_stream("uniform", 1, 25)
        a = ArraySource(lhs, rhs, batch_size=10).describe()
        b = ArraySource(lhs, rhs + np.uint64(1), batch_size=10).describe()
        assert a != b

    def test_make_source_specs(self):
        assert make_source("profile:bursty", tuples=100).describe()["kind"] == "profile"
        dataset = make_source("dataset-one:cardinality=300,implied=100")
        assert dataset.describe()["cardinality"] == 300
        with pytest.raises(ValueError):
            make_source("profile:nope")
        with pytest.raises(ValueError):
            make_source("csv:/tmp/x")
        with pytest.raises(ValueError):
            make_source("dataset-one:bogus=1")
        with pytest.raises(ValueError):
            make_source("dataset-one:cardinality=abc")

    def test_make_source_push_specs(self):
        source = make_source("push:capacity=3", batch_size=10)
        assert isinstance(source, PushSource)
        assert source.capacity_tuples == 30
        assert make_source("push").describe() == {
            "kind": "push",
            "batch_size": 4096,
        }
        with pytest.raises(ValueError, match="--tuples"):
            make_source("push", tuples=100)
        with pytest.raises(ValueError, match="unknown push"):
            make_source("push:bogus=1")


def _column(values) -> np.ndarray:
    return np.asarray(values, dtype=np.uint64)


class TestPushSource:
    def test_rechunks_onto_absolute_batch_grid(self):
        source = PushSource(batch_size=4, capacity_batches=8)
        # Awkward chunk sizes: 1, 6, 1 — batches must still be 4/4/tail.
        source.push(_column([0]), _column([100]))
        source.push(_column([1, 2, 3, 4, 5, 6]), _column([101, 102, 103, 104, 105, 106]))
        source.push(_column([7]), _column([107]))
        assert source.batch(0)[0].tolist() == [0, 1, 2, 3]
        assert source.batch(1)[1].tolist() == [104, 105, 106, 107]
        assert source.batch(2) is PENDING  # live stream, nothing buffered
        source.close()
        assert source.batch(2) is None

    def test_trailing_partial_batch_drains_after_close(self):
        source = PushSource(batch_size=4)
        source.push(_column([1, 2, 3, 4, 5, 6]), _column([1, 2, 3, 4, 5, 6]))
        assert len(source.batch(0)[0]) == 4
        source.close()
        assert source.batch(1)[0].tolist() == [5, 6]
        assert source.batch(2) is None

    def test_backpressure_is_atomic(self):
        source = PushSource(batch_size=4, capacity_batches=1)
        source.push(_column([1, 2, 3]), _column([1, 2, 3]))
        with pytest.raises(PushBacklogFull) as excinfo:
            source.push(_column([4, 5]), _column([4, 5]))
        assert excinfo.value.pending_tuples == 3
        assert excinfo.value.capacity_tuples == 4
        assert excinfo.value.retry_after >= 1
        # Atomic: the rejected chunk buffered nothing.
        assert source.pending_tuples == 3
        source.push(_column([4]), _column([4]))  # exactly fits
        assert source.batch(0)[0].tolist() == [1, 2, 3, 4]

    def test_single_consumer_monotone(self):
        source = PushSource(batch_size=2)
        source.push(_column([1, 2, 3, 4]), _column([1, 2, 3, 4]))
        source.batch(0)
        with pytest.raises(ValueError, match="monotone"):
            source.batch(0)  # re-reading a consumed batch
        with pytest.raises(ValueError, match="monotone"):
            source.batch(5)  # skipping ahead

    def test_push_validation(self):
        source = PushSource(batch_size=4)
        with pytest.raises(ValueError, match="equal-length"):
            source.push(_column([1, 2]), _column([1]))
        source.close()
        with pytest.raises(ValueError, match="close"):
            source.push(_column([1]), _column([1]))

    def test_wait_batch_wakes_on_stop_event(self):
        source = PushSource(batch_size=4)
        stop = threading.Event()
        stop.set()
        assert source.wait_batch(0, stop) is PENDING

    def test_wait_batch_blocks_until_push(self):
        source = PushSource(batch_size=2)
        got = []

        def consumer() -> None:
            got.append(source.wait_batch(0, threading.Event()))

        thread = threading.Thread(target=consumer)
        thread.start()
        source.push(_column([8, 9]), _column([8, 9]))
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert got[0][0].tolist() == [8, 9]

    def test_resume_swallows_committed_prefix(self):
        source = PushSource(batch_size=4)
        source.resume_at(8, 2)
        source.push(_column(range(10)), _column(range(10)))
        assert source.skipped_tuples == 8
        assert source.pushed_tuples == 2
        source.close()
        assert source.batch(2)[0].tolist() == [8, 9]

    def test_resume_rejects_off_grid_cursor(self):
        source = PushSource(batch_size=4)
        with pytest.raises(ValueError, match="grid"):
            source.resume_at(6, 1)
        used = PushSource(batch_size=4)
        used.push(_column([1]), _column([1]))
        with pytest.raises(ValueError, match="already served"):
            used.resume_at(4, 1)

    def test_rejected_push_leaves_resume_skip_intact(self):
        """A 429'd push must be atomic *including* the resume-skip state —
        the regression consumed the skip prefix before the capacity check,
        so the client's subsequent (split) retries re-buffered tuples the
        interrupted run had already ingested."""
        source = PushSource(batch_size=4, capacity_batches=1)
        source.resume_at(8, 2)
        # One chunk straddling the resume boundary, too big to buffer:
        # 8 skipped + 5 kept > the 4-tuple capacity.
        with pytest.raises(PushBacklogFull):
            source.push(_column(range(13)), _column(range(13)))
        assert source.skipped_tuples == 0  # nothing consumed by the reject
        assert source.pending_tuples == 0
        # The client splits the same range into smaller chunks: the skip
        # prefix must still swallow exactly the committed 8 tuples.
        assert source.push(_column(range(8)), _column(range(8))) == 0
        assert source.push(_column(range(8, 12)), _column(range(8, 12))) == 4
        assert source.skipped_tuples == 8
        assert source.batch(2)[0].tolist() == [8, 9, 10, 11]

    def test_resume_drained_restores_closed_tail(self):
        source = PushSource(batch_size=4)
        source.resume_drained(6, 2)  # off-grid: the closed stream's tail
        assert source.closed
        assert source.end_of_stream
        assert source.batch(2) is None  # serves as drained, no replay
        with pytest.raises(ValueError, match="close"):
            source.push(_column([1]), _column([1]))

    def test_resume_drained_rejects_impossible_tails(self):
        for cursor, batch_index in ((4, 2), (9, 2), (1, 0), (-1, 0)):
            with pytest.raises(ValueError, match="tail"):
                PushSource(batch_size=4).resume_drained(cursor, batch_index)
        used = PushSource(batch_size=4)
        used.push(_column([1]), _column([1]))
        with pytest.raises(ValueError, match="already served"):
            used.resume_drained(4, 1)

    def test_end_of_stream_only_after_close_and_drain(self):
        source = PushSource(batch_size=4)
        source.push(_column(range(6)), _column(range(6)))
        assert not source.end_of_stream
        source.close()
        assert not source.end_of_stream  # two batches still buffered
        source.batch(0)
        source.batch(1)  # the short tail
        assert source.end_of_stream


class TestServiceCore:
    def test_unknown_profile_selection_rejected(self, registry):
        with pytest.raises(ValueError):
            ImplicationService(ServeConfig(profiles=("no-such-profile",)))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(batch_size=0)
        with pytest.raises(ValueError):
            ServeConfig(publish_every=0)
        with pytest.raises(ValueError):
            ServeConfig(workers=0)

    def test_initial_publish_before_first_batch(self, registry):
        service = ImplicationService(
            ServeConfig(source="profile:uniform", tuples=50, batch_size=10,
                        num_bitmaps=8),
            profiles={"case": small_conditions()},
        )
        snapshot = service.store.get("case")
        assert snapshot is not None and snapshot.cursor == 0
        assert snapshot.stats["tuples"] == 0

    def test_every_publish_matches_offline_reference(self, registry):
        lhs, rhs = generate_stream("skewed", 7, 900)
        service = ImplicationService(
            ServeConfig(batch_size=200, num_bitmaps=8, seed=2),
            source=ArraySource(lhs, rhs, batch_size=200),
            profiles={"case": small_conditions()},
        )
        while service.ingest_step():
            snapshot = service.store.get("case")
            reference = offline_reference(
                service.templates["case"],
                lhs[: snapshot.cursor],
                rhs[: snapshot.cursor],
                batch_size=200,
            )
            assert snapshot.digest == estimator_state_digest(reference)
        assert service.store.status == "drained"
        assert service.cursor == 900

    def test_publish_every_batches_cadence(self, registry):
        lhs, rhs = generate_stream("uniform", 3, 500)
        service = ImplicationService(
            ServeConfig(batch_size=100, publish_every=3, num_bitmaps=8),
            source=ArraySource(lhs, rhs, batch_size=100),
            profiles={"case": small_conditions()},
        )
        service.ingest_step()
        service.ingest_step()
        assert service.store.get("case").cursor == 0  # not yet published
        service.ingest_step()
        assert service.store.get("case").cursor == 300
        while service.ingest_step():
            pass
        # Drain always commits the tail even mid-cadence.
        assert service.store.get("case").cursor == 500

    def test_run_honours_stop_event(self, registry):
        service = ImplicationService(
            ServeConfig(source="profile:uniform", batch_size=50, num_bitmaps=8),
            profiles={"case": small_conditions()},
        )
        stop = threading.Event()
        thread = threading.Thread(target=service.run, args=(stop,))
        thread.start()
        deadline = time.monotonic() + 30.0
        while service.cursor == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        stop.set()
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert service.store.status == "stopped"
        # The boundary commit covers everything ingested.
        assert service.store.get("case").cursor == service.cursor > 0


class TestDurability:
    def test_stop_resume_matches_uninterrupted_digests(self, registry, tmp_path):
        config = ServeConfig(
            source="profile:bursty", tuples=1200, batch_size=150,
            num_bitmaps=8, seed=4,
        )
        uninterrupted = ImplicationService(config)
        while uninterrupted.ingest_step():
            pass
        want = {
            name: snapshot.digest
            for name, snapshot in uninterrupted.store.all().items()
        }

        interrupted = ImplicationService(config, checkpoint_dir=str(tmp_path))
        for _ in range(4):
            interrupted.ingest_step()
        del interrupted

        resumed = ImplicationService(config, checkpoint_dir=str(tmp_path))
        assert resumed.restored_generation is not None
        assert resumed.cursor == 600
        while resumed.ingest_step():
            pass
        got = {
            name: snapshot.digest for name, snapshot in resumed.store.all().items()
        }
        assert got == want

    def test_resume_rejects_mismatched_shape(self, registry, tmp_path):
        config = ServeConfig(
            source="profile:uniform", tuples=400, batch_size=100, num_bitmaps=8
        )
        service = ImplicationService(config, checkpoint_dir=str(tmp_path))
        service.ingest_step()
        with pytest.raises(ValueError, match="shaped"):
            ImplicationService(
                ServeConfig(
                    source="profile:uniform", tuples=400, batch_size=50,
                    num_bitmaps=8,
                ),
                checkpoint_dir=str(tmp_path),
            )

    def test_push_restart_after_partial_final_batch(self, registry, tmp_path):
        """Restarting a push service whose stream ended on a short final
        batch must serve the checkpoint as drained — the regression was a
        ValueError from resume_at's grid check at construction, leaving the
        service permanently unable to start against its own checkpoints."""
        config = ServeConfig(
            source="push:capacity=4", batch_size=4, num_bitmaps=8
        )
        lhs, rhs = generate_stream("uniform", 21, 6)  # 4 + a 2-tuple tail
        service = ImplicationService(
            config, profiles={"case": small_conditions()},
            checkpoint_dir=str(tmp_path),
        )
        service.source.push(lhs, rhs)
        service.source.close()
        while service.ingest_step():
            pass
        assert service.cursor == 6
        want = service.store.get("case").digest
        del service

        resumed = ImplicationService(
            config, profiles={"case": small_conditions()},
            checkpoint_dir=str(tmp_path),
        )
        assert resumed.restored_generation is not None
        assert resumed.cursor == 6
        assert resumed.store.status == "drained"
        assert resumed.store.get("case").digest == want
        # The stream is over: a run drains immediately, no replay expected.
        assert resumed.ingest_step() is False
        assert resumed.store.get("case").digest == want

    def test_push_restart_after_on_grid_drain(self, registry, tmp_path):
        """Same story when the stream happened to end exactly on the batch
        grid: the recorded end-of-stream marker (not the cursor's
        off-grid-ness) is what flips the restore to drained."""
        config = ServeConfig(
            source="push:capacity=4", batch_size=4, num_bitmaps=8
        )
        lhs, rhs = generate_stream("uniform", 22, 8)
        service = ImplicationService(
            config, profiles={"case": small_conditions()},
            checkpoint_dir=str(tmp_path),
        )
        service.source.push(lhs, rhs)
        service.source.close()
        while service.ingest_step():
            pass
        want = service.store.get("case").digest
        del service

        resumed = ImplicationService(
            config, profiles={"case": small_conditions()},
            checkpoint_dir=str(tmp_path),
        )
        assert resumed.cursor == 8
        assert resumed.store.status == "drained"
        assert resumed.ingest_step() is False
        assert resumed.store.get("case").digest == want

    def test_restored_metrics_fold_into_registry(self, registry, tmp_path):
        config = ServeConfig(
            source="profile:uniform", tuples=300, batch_size=100, num_bitmaps=8
        )
        service = ImplicationService(config, checkpoint_dir=str(tmp_path))
        while service.ingest_step():
            pass
        tuples_before = registry.counter("serving.tuples").value
        assert tuples_before == 300
        set_registry(MetricsRegistry())
        try:
            ImplicationService(config, checkpoint_dir=str(tmp_path))
            from repro.observability import get_registry

            assert get_registry().counter("serving.tuples").value == tuples_before
            assert get_registry().counter("serving.restores").value == 1
        finally:
            set_registry(registry)


@pytest.mark.slow
class TestConcurrentReads:
    def test_reads_during_ingest_are_never_torn(self, registry):
        """Reader threads hammer the store while ingest runs; every digest
        they observe must (a) match its own snapshot's decoded payload and
        (b) equal the offline single pass over that cursor's prefix."""
        lhs, rhs = generate_stream("duplicate_heavy", 9, 2000)
        service = ImplicationService(
            ServeConfig(batch_size=125, num_bitmaps=8, seed=6),
            source=ArraySource(lhs, rhs, batch_size=125),
            profiles={"case": small_conditions()},
        )
        observed: dict[int, str] = {}
        torn: list[str] = []
        done = threading.Event()

        def reader() -> None:
            while not done.is_set():
                snapshot = service.store.get("case")
                digest = estimator_state_digest(snapshot.estimator)
                if digest != snapshot.digest:
                    torn.append(
                        f"cursor {snapshot.cursor}: served digest "
                        f"{snapshot.digest[:12]} != decoded {digest[:12]}"
                    )
                observed[snapshot.cursor] = snapshot.digest

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        while service.ingest_step():
            pass
        done.set()
        for thread in threads:
            thread.join()
        assert torn == []
        assert len(observed) > 1  # readers saw the state advance
        for cursor, digest in observed.items():
            reference = offline_reference(
                service.templates["case"], lhs[:cursor], rhs[:cursor],
                batch_size=125,
            )
            assert digest == estimator_state_digest(reference), (
                f"digest at cursor {cursor} does not match a checkpoint "
                f"generation of the stream"
            )

    def test_metrics_endpoint_never_500s_under_load(self, registry):
        service = ImplicationService(
            ServeConfig(source="profile:uniform", batch_size=200, num_bitmaps=8),
            profiles={"case": small_conditions()},
        )
        httpd = build_server(service)
        port = httpd.server_address[1]
        http_thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        http_thread.start()
        stop = threading.Event()
        ingest = threading.Thread(target=service.run, args=(stop,), daemon=True)
        ingest.start()
        statuses: list[int] = []
        errors: list[str] = []

        def client() -> None:
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                try:
                    status, _, _ = get(port, "/metrics", timeout=10.0)
                    statuses.append(status)
                except Exception as error:  # noqa: BLE001 - recorded below
                    errors.append(repr(error))

        clients = [threading.Thread(target=client) for _ in range(8)]
        for thread in clients:
            thread.start()
        for thread in clients:
            thread.join()
        stop.set()
        ingest.join(timeout=30.0)
        httpd.shutdown()
        httpd.server_close()
        assert errors == []
        assert statuses and set(statuses) == {200}


class TestHTTPEndpoints:
    """The endpoint table, run identically against both front-ends."""

    @pytest.fixture(params=sorted(FRONTENDS))
    def served(self, request, registry):
        lhs, rhs = generate_stream("skewed", 12, 600)
        service = ImplicationService(
            ServeConfig(batch_size=200, num_bitmaps=8),
            source=ArraySource(lhs, rhs, batch_size=200),
            profiles={
                "strict": ImplicationConditions(min_support=4),
                "loose": ImplicationConditions(min_support=1),
            },
        )
        while service.ingest_step():
            pass
        server, stop = serve_on_thread(FRONTENDS[request.param], service)
        yield service, server.server_address[1], lhs
        stop()

    def test_health(self, served):
        service, port, _ = served
        status, body, _ = get(port, "/health")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "drained"
        assert health["cursor"] == 600
        assert health["profiles"] == ["strict", "loose"]

    def test_profiles_lists_both(self, served):
        _, port, _ = served
        status, body, _ = get(port, "/profiles")
        assert status == 200
        assert set(json.loads(body)) == {"strict", "loose"}

    def test_query_by_profile_and_stat(self, served):
        service, port, _ = served
        status, body, _ = get(port, "/query?profile=strict&stat=implication")
        assert status == 200
        payload = json.loads(body)
        snapshot = service.store.get("strict")
        assert payload["value"] == snapshot.stats["implication"]
        assert payload["digest"] == snapshot.digest

    def test_query_by_conditions(self, served):
        _, port, _ = served
        status, body, _ = get(port, "/query?min_support=4")
        assert status == 200
        assert json.loads(body)["profile"] == "strict"

    def test_query_errors(self, served):
        _, port, _ = served
        assert get(port, "/query?profile=missing")[0] == 404
        assert get(port, "/query?min_support=99")[0] == 404
        assert get(port, "/query?profile=strict&stat=bogus")[0] == 400
        assert get(port, "/query")[0] == 400
        assert get(port, "/nope")[0] == 404

    def test_top_lookup(self, served):
        service, port, lhs = served
        itemset = int(lhs[0])
        status, body, _ = get(port, f"/top?profile=loose&itemset={itemset}")
        assert status == 200
        lookup = json.loads(body)["lookup"]
        assert lookup["itemset"] == itemset
        assert {"bitmap", "position", "zone", "tracked"} <= set(lookup)

    def test_snapshot_bytes_roundtrip(self, served):
        service, port, _ = served
        status, body, headers = get(port, "/snapshot?profile=strict")
        assert status == 200
        assert headers["Content-Type"] == "application/octet-stream"
        decoded = ImplicationCountEstimator.from_bytes(body)
        assert estimator_state_digest(decoded) == headers["X-Repro-Digest"]
        assert int(headers["X-Repro-Cursor"]) == 600

    def test_window_flag_falsey_spellings_read_landmark(self, served):
        """``window=0/false/no/off`` must behave exactly like no flag —
        the regression was 400ing every spelling that wasn't truthy."""
        _, port, _ = served
        want = get(port, "/snapshot?profile=strict")[2]["X-Repro-Digest"]
        for spelling in ("0", "false", "no", "off"):
            status, _, headers = get(
                port, f"/snapshot?profile=strict&window={spelling}"
            )
            assert status == 200, spelling
            assert headers["X-Repro-Digest"] == want
            assert get(port, f"/query?profile=strict&window={spelling}")[0] == 200

    def test_window_flag_gibberish_rejected(self, served):
        _, port, _ = served
        status, body, _ = get(port, "/snapshot?profile=strict&window=maybe")
        assert status == 400
        assert b"window" in body

    def test_bare_window_flag_selects_the_flag(self, served):
        """A valueless ``?window`` is a documented truthy spelling — the
        regression dropped blank params before _parse_flag ever saw them,
        so a bare flag silently read the landmark view."""
        _, port, _ = served
        for path in (
            "/snapshot?profile=strict&window",
            "/snapshot?profile=strict&window=",
            "/query?profile=strict&window",
        ):
            status, body, _ = get(port, path)
            assert status == 400, path  # windowing is off on this service
            assert b"--window" in body, path

    def test_malformed_content_length_answers_400(self, served):
        """Both front-ends must answer a clean 400 — the threaded handler
        used to let int() raise out of _handle, dumping a socketserver
        traceback and aborting the connection."""
        _, port, _ = served
        with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
            sock.sendall(
                b"POST /ingest HTTP/1.1\r\n"
                b"Host: x\r\nContent-Length: abc\r\n\r\n"
            )
            sock.settimeout(10)
            chunks = []
            while True:
                try:
                    data = sock.recv(65536)
                except socket.timeout:
                    break
                if not data:
                    break
                chunks.append(data)
        reply = b"".join(chunks)
        assert reply.startswith(b"HTTP/1.1 400"), reply
        assert b"Content-Length" in reply

    def test_windowed_snapshot_refused_without_window(self, served):
        """A landmark-only service must refuse ``/snapshot?window=1``
        explicitly — the regression served the landmark payload under the
        landmark digest while the client believed it got windowed bytes."""
        _, port, _ = served
        status, body, _ = get(port, "/snapshot?profile=strict&window=1")
        assert status == 400
        assert b"--window" in body

    def test_keep_alive_connection_reuse(self, served):
        import http.client

        _, port, _ = served
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            sock = None
            for _ in range(3):
                connection.request("GET", "/health")
                response = connection.getresponse()
                response.read()
                assert response.status == 200
                if sock is None:
                    sock = connection.sock
                assert connection.sock is sock  # same socket — reused
        finally:
            connection.close()

    def test_post_routing_errors(self, served):
        _, port, _ = served
        assert get(port, "/ingest")[0] == 405
        assert post(port, "/health", b"{}")[0] == 404
        # A pull-source service has no push queue to ingest into.
        status, body, _ = post(port, "/ingest", b'{"lhs": [], "rhs": []}')
        assert status == 409
        assert b"--source push" in body


class TestWindowedSnapshotEndpoint:
    @pytest.fixture(params=sorted(FRONTENDS))
    def windowed(self, request, registry):
        lhs, rhs = generate_stream("skewed", 21, 600)
        service = ImplicationService(
            ServeConfig(
                batch_size=50, num_bitmaps=8, window=200, window_generations=4
            ),
            source=ArraySource(lhs, rhs, batch_size=50),
            profiles={"case": small_conditions()},
        )
        while service.ingest_step():
            pass
        server, stop = serve_on_thread(FRONTENDS[request.param], service)
        yield service, server.server_address[1]
        stop()

    def test_windowed_snapshot_serves_merged_payload(self, windowed):
        service, port = windowed
        status, body, headers = get(port, "/snapshot?profile=case&window=1")
        assert status == 200
        snapshot = service.store.get("case")
        assert headers["X-Repro-Digest"] == snapshot.window["merged_digest"]
        assert headers["X-Repro-Window-Digest"] == snapshot.window["digest"]
        assert int(headers["X-Repro-Window"]) == 200
        decoded = ImplicationCountEstimator.from_bytes(body)
        assert estimator_state_digest(decoded) == headers["X-Repro-Digest"]
        # And the landmark payload is still the default, under a
        # different digest — the two views can never be confused.
        landmark = get(port, "/snapshot?profile=case")[2]["X-Repro-Digest"]
        assert landmark == snapshot.digest != headers["X-Repro-Digest"]


class TestClientDisconnects:
    """A vanished client is a counter bump, never a traceback.

    The regression: the threaded handler caught only ``BrokenPipeError``,
    so ``ConnectionResetError`` (a RST instead of a FIN) and socket
    timeouts dumped tracebacks per dropped client under load.
    """

    def _drained_service(self):
        lhs, rhs = generate_stream("uniform", 5, 100)
        service = ImplicationService(
            ServeConfig(batch_size=50, num_bitmaps=8),
            source=ArraySource(lhs, rhs, batch_size=50),
            profiles={"case": small_conditions()},
        )
        while service.ingest_step():
            pass
        return service

    @pytest.mark.parametrize(
        "error",
        [BrokenPipeError, ConnectionResetError, ConnectionAbortedError, TimeoutError],
    )
    def test_threaded_handler_counts_disconnect(self, registry, error):
        from repro.serving.http import Router, _Handler

        service = self._drained_service()

        class _Vanished:
            def write(self, data):
                raise error()

            def flush(self):  # pragma: no cover - never reached
                pass

        handler = object.__new__(_Handler)
        handler.path = "/health"
        handler.headers = {}
        handler.rfile = io.BytesIO(b"")
        handler.wfile = _Vanished()
        handler.server = SimpleNamespace(router=Router(service))
        handler.requestline = "GET /health HTTP/1.1"
        handler.request_version = "HTTP/1.1"
        handler.client_address = ("127.0.0.1", 0)
        handler.close_connection = False

        handler._handle("GET")  # must not raise

        assert registry.counter("serving.http.client_disconnects").value == 1
        assert handler.close_connection

    def test_asyncio_counts_aborted_request(self, registry):
        service = self._drained_service()
        server, stop = serve_on_thread(build_async_server, service)
        try:
            with socket.create_connection(server.server_address) as sock:
                # Promise a body, deliver a fragment, vanish.
                sock.sendall(
                    b"POST /ingest HTTP/1.1\r\n"
                    b"Content-Length: 64\r\n\r\nshort"
                )
            deadline = time.monotonic() + 30.0
            counter = registry.counter("serving.http.client_disconnects")
            while counter.value == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert counter.value == 1
        finally:
            stop()


class TestPushIngestHTTP:
    """``POST /ingest`` through a real front-end: validation, digests,
    explicit backpressure."""

    @pytest.fixture(params=sorted(FRONTENDS))
    def pushable(self, request, registry):
        service = ImplicationService(
            ServeConfig(
                source="push:capacity=8", batch_size=128, num_bitmaps=8,
                publish_every=1,
            ),
            profiles={"case": small_conditions()},
        )
        server, stop = serve_on_thread(FRONTENDS[request.param], service)
        yield service, server.server_address[1]
        stop()

    def test_push_stream_lands_on_pull_digest(self, pushable):
        """JSON + binary pushes, closed and drained, equal the offline
        pull reference bit-for-bit — the tentpole identity over HTTP."""
        service, port = pushable
        lhs, rhs = generate_stream("skewed", 17, 600)
        half = 300
        status, body, _ = post(
            port,
            "/ingest",
            json.dumps(
                {"lhs": lhs[:half].tolist(), "rhs": rhs[:half].tolist()}
            ).encode(),
        )
        assert status == 200
        assert json.loads(body)["accepted"] == half
        blob = (
            lhs[half:].astype("<u8").tobytes()
            + rhs[half:].astype("<u8").tobytes()
        )
        status, body, _ = post(
            port, "/ingest?close=1", blob, "application/octet-stream"
        )
        assert status == 200
        assert json.loads(body)["closed"]
        while service.ingest_step():
            pass
        reference = offline_reference(
            service.templates["case"], lhs, rhs, batch_size=128
        )
        snapshot = service.store.get("case")
        assert snapshot.cursor == 600
        assert snapshot.digest == estimator_state_digest(reference)

    def test_backpressure_answers_429_with_retry_after(self, pushable):
        service, port = pushable
        size = service.source.capacity_tuples
        full = json.dumps(
            {"lhs": list(range(size)), "rhs": list(range(size))}
        ).encode()
        assert post(port, "/ingest", full)[0] == 200
        status, body, headers = post(
            port, "/ingest", b'{"lhs": [1], "rhs": [1]}'
        )
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        rejected = json.loads(body)
        assert rejected["pending"] == size
        assert rejected["capacity"] == size
        # The client's discipline: drain, then the identical retry lands.
        service.ingest_step()
        assert post(port, "/ingest", b'{"lhs": [1], "rhs": [1]}')[0] == 200

    def test_malformed_bodies_buffer_nothing(self, pushable):
        service, port = pushable
        cases = [
            (b"not json", "application/json"),
            (b"[1, 2]", "application/json"),
            (b'{"lhs": [1]}', "application/json"),
            (b'{"lhs": [1], "rhs": [1, 2]}', "application/json"),
            (b'{"lhs": [1], "rhs": [-1]}', "application/json"),
            (b'{"lhs": [1], "rhs": [1.5]}', "application/json"),
            (b'{"lhs": [true], "rhs": [1]}', "application/json"),
            (b'{"lhs": [1], "rhs": [1], "extra": []}', "application/json"),
            (b"\x00" * 15, "application/octet-stream"),  # not 16-aligned
            (b"{}", "text/plain"),
        ]
        for body, content_type in cases:
            status, _, _ = post(port, "/ingest", body, content_type)
            assert status == 400, (body, content_type)
        assert service.source.pending_tuples == 0
        assert service.source.pushed_tuples == 0

    def test_malformed_close_chunk_does_not_close_stream(self, pushable):
        service, port = pushable
        assert post(port, "/ingest?close=1", b"not json")[0] == 400
        assert not service.source.closed

    def test_bare_close_flag_closes_stream(self, pushable):
        """``POST /ingest?close`` with no value is the documented bare
        spelling — it must close, not be silently dropped by the parse."""
        service, port = pushable
        status, body, _ = post(
            port, "/ingest?close", b'{"lhs": [7], "rhs": [9]}'
        )
        assert status == 200
        assert json.loads(body)["closed"]
        assert service.source.closed

    def test_oversized_body_refused(self, pushable):
        from repro.serving.http import MAX_INGEST_BODY

        _, port = pushable
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/ingest",
            data=b"x",
            method="POST",
            headers={
                "Content-Type": "application/octet-stream",
                "Content-Length": str(MAX_INGEST_BODY + 16),
            },
        )
        with pytest.raises(
            (urllib.error.HTTPError, ConnectionError, urllib.error.URLError)
        ) as excinfo:
            urllib.request.urlopen(request, timeout=10.0)
        if isinstance(excinfo.value, urllib.error.HTTPError):
            assert excinfo.value.code == 413


@pytest.mark.slow
class TestConcurrentHTTPReads:
    """Never-torn reads, end to end over real sockets, both front-ends."""

    @pytest.mark.parametrize("frontend", sorted(FRONTENDS))
    def test_http_snapshot_reads_never_torn(self, registry, frontend):
        lhs, rhs = generate_stream("duplicate_heavy", 19, 1500)
        service = ImplicationService(
            ServeConfig(batch_size=125, num_bitmaps=8),
            source=ArraySource(lhs, rhs, batch_size=125),
            profiles={"case": small_conditions()},
        )
        server, stop = serve_on_thread(FRONTENDS[frontend], service)
        port = server.server_address[1]
        torn: list[str] = []
        errors: list[str] = []
        done = threading.Event()

        def reader() -> None:
            while not done.is_set():
                try:
                    status, body, headers = get(port, "/snapshot?profile=case")
                    if status != 200:
                        errors.append(f"status {status}")
                        continue
                    digest = estimator_state_digest(
                        ImplicationCountEstimator.from_bytes(body)
                    )
                    if digest != headers["X-Repro-Digest"]:
                        torn.append(headers["X-Repro-Cursor"])
                except Exception as error:  # noqa: BLE001 - recorded below
                    errors.append(repr(error))

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        try:
            while service.ingest_step():
                pass
        finally:
            done.set()
            for thread in readers:
                thread.join(timeout=30.0)
            stop()
        assert torn == []
        assert errors == []


@pytest.mark.slow
class TestServeSubprocess:
    """The CLI process end to end: SIGTERM mid-ingest, resume, digest."""

    def _spawn(self, ckdir: Path, extra: list[str]):
        command = [
            sys.executable, "-m", "repro.cli", "serve",
            "--source", "profile:skewed", "--tuples", "30000",
            "--batch-size", "2048", "--num-bitmaps", "8",
            "--checkpoint-dir", str(ckdir), "--workers", "2",
            "--profiles", "support-only,noisy-confidence", *extra,
        ]
        env = {"PYTHONPATH": str(SRC_ROOT), "PATH": "/usr/bin:/bin"}
        import os

        env.update({k: v for k, v in os.environ.items() if k not in env})
        proc = subprocess.Popen(
            command, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, text=True,
        )
        listening = json.loads(proc.stdout.readline())
        assert listening["event"] == "listening", listening
        return proc, listening

    def test_asyncio_frontend_serves_and_stops_cleanly(self, tmp_path):
        proc, listening = self._spawn(tmp_path, ["--frontend", "asyncio"])
        port = listening["port"]
        try:
            assert listening["frontend"] == "asyncio"
            status, body, _ = get(port, "/health")
            assert status == 200
            assert json.loads(body)["profiles"] == [
                "support-only", "noisy-confidence",
            ]
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if json.loads(get(port, "/health")[1])["cursor"] > 0:
                    break
                time.sleep(0.05)
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
        stopped = json.loads(out.strip().splitlines()[-1])
        assert stopped["status"] == "stopped"
        assert stopped["cursor"] > 0
        assert "Traceback" not in err, err

    def test_sigterm_resume_reaches_uninterrupted_digest(self, tmp_path):
        proc, listening = self._spawn(tmp_path, [])
        port = listening["port"]
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                health = json.loads(get(port, "/health")[1])
                if health["cursor"] >= 10000:
                    break
                time.sleep(0.05)
            assert health["cursor"] >= 10000, "service never made progress"
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
        stopped = json.loads(out.strip().splitlines()[-1])
        assert stopped["status"] == "stopped"
        assert 0 < stopped["cursor"] < 30000
        assert "resource_tracker" not in err, err

        proc, listening = self._spawn(tmp_path, ["--exit-when-drained"])
        try:
            assert listening["resumed_generation"] is not None
            assert listening["cursor"] == stopped["cursor"]
            out, err = proc.communicate(timeout=240)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
        final = json.loads(out.strip().splitlines()[-1])
        assert final["cursor"] == 30000
        assert "resource_tracker" not in err, err

        # The resumed digest must equal an uninterrupted run's.
        config = ServeConfig(
            source="profile:skewed", tuples=30000, batch_size=2048,
            num_bitmaps=8, workers=2, profiles=("support-only", "noisy-confidence"),
        )
        reference = ImplicationService(config)
        while reference.ingest_step():
            pass
        want = reference.store.get("support-only").digest
        shutdown_runtime()
        assert final["digest"] == want
