"""Tests for the serving layer: sources, service core, HTTP, durability.

The concurrency tests pin the headline guarantees: reads during active
ingest are internally consistent (every observed digest equals an offline
single pass over that snapshot's stream prefix — never a torn state), a
SIGTERM'd service resumes to the bit-for-bit digest of an uninterrupted
run, and ``/metrics`` never 500s under concurrent load.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.core.conditions import ImplicationConditions
from repro.core.estimator import ImplicationCountEstimator
from repro.core.serialize import estimator_state_digest
from repro.engine import shutdown_runtime
from repro.observability import MetricsRegistry, set_registry
from repro.serving import (
    ArraySource,
    ImplicationService,
    ProfileSource,
    ServeConfig,
    make_source,
    offline_reference,
)
from repro.serving.http import build_server
from repro.verify.streams import generate_stream

SRC_ROOT = Path(repro.__file__).resolve().parents[1]


@pytest.fixture()
def registry():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


def small_conditions() -> ImplicationConditions:
    return ImplicationConditions(min_support=2)


def get(port: int, path: str, timeout: float = 10.0):
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=timeout
        ) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


class TestSources:
    def test_profile_source_is_deterministic_and_random_access(self):
        source = ProfileSource("skewed", seed=3, batch_size=100, tuples=350)
        again = ProfileSource("skewed", seed=3, batch_size=100, tuples=350)
        third = source.batch(3)
        assert len(third[0]) == 50  # short final batch
        assert source.batch(4) is None
        # Random access: batch 2 equals batch 2 regardless of order.
        lhs_a, rhs_a = source.batch(2)
        lhs_b, rhs_b = again.batch(2)
        np.testing.assert_array_equal(lhs_a, lhs_b)
        np.testing.assert_array_equal(rhs_a, rhs_b)
        # Distinct batches differ (per-batch derived seeds).
        assert not np.array_equal(source.batch(0)[0], source.batch(1)[0])

    def test_profile_source_infinite_without_tuples(self):
        source = ProfileSource("uniform", batch_size=10)
        assert source.batch(10_000) is not None

    def test_array_source_slices_absolutely(self):
        lhs, rhs = generate_stream("uniform", 1, 25)
        source = ArraySource(lhs, rhs, batch_size=10)
        np.testing.assert_array_equal(source.batch(1)[0], lhs[10:20])
        assert len(source.batch(2)[0]) == 5
        assert source.batch(3) is None

    def test_array_source_description_is_content_addressed(self):
        lhs, rhs = generate_stream("uniform", 1, 25)
        a = ArraySource(lhs, rhs, batch_size=10).describe()
        b = ArraySource(lhs, rhs + np.uint64(1), batch_size=10).describe()
        assert a != b

    def test_make_source_specs(self):
        assert make_source("profile:bursty", tuples=100).describe()["kind"] == "profile"
        dataset = make_source("dataset-one:cardinality=300,implied=100")
        assert dataset.describe()["cardinality"] == 300
        with pytest.raises(ValueError):
            make_source("profile:nope")
        with pytest.raises(ValueError):
            make_source("csv:/tmp/x")
        with pytest.raises(ValueError):
            make_source("dataset-one:bogus=1")
        with pytest.raises(ValueError):
            make_source("dataset-one:cardinality=abc")


class TestServiceCore:
    def test_unknown_profile_selection_rejected(self, registry):
        with pytest.raises(ValueError):
            ImplicationService(ServeConfig(profiles=("no-such-profile",)))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(batch_size=0)
        with pytest.raises(ValueError):
            ServeConfig(publish_every=0)
        with pytest.raises(ValueError):
            ServeConfig(workers=0)

    def test_initial_publish_before_first_batch(self, registry):
        service = ImplicationService(
            ServeConfig(source="profile:uniform", tuples=50, batch_size=10,
                        num_bitmaps=8),
            profiles={"case": small_conditions()},
        )
        snapshot = service.store.get("case")
        assert snapshot is not None and snapshot.cursor == 0
        assert snapshot.stats["tuples"] == 0

    def test_every_publish_matches_offline_reference(self, registry):
        lhs, rhs = generate_stream("skewed", 7, 900)
        service = ImplicationService(
            ServeConfig(batch_size=200, num_bitmaps=8, seed=2),
            source=ArraySource(lhs, rhs, batch_size=200),
            profiles={"case": small_conditions()},
        )
        while service.ingest_step():
            snapshot = service.store.get("case")
            reference = offline_reference(
                service.templates["case"],
                lhs[: snapshot.cursor],
                rhs[: snapshot.cursor],
                batch_size=200,
            )
            assert snapshot.digest == estimator_state_digest(reference)
        assert service.store.status == "drained"
        assert service.cursor == 900

    def test_publish_every_batches_cadence(self, registry):
        lhs, rhs = generate_stream("uniform", 3, 500)
        service = ImplicationService(
            ServeConfig(batch_size=100, publish_every=3, num_bitmaps=8),
            source=ArraySource(lhs, rhs, batch_size=100),
            profiles={"case": small_conditions()},
        )
        service.ingest_step()
        service.ingest_step()
        assert service.store.get("case").cursor == 0  # not yet published
        service.ingest_step()
        assert service.store.get("case").cursor == 300
        while service.ingest_step():
            pass
        # Drain always commits the tail even mid-cadence.
        assert service.store.get("case").cursor == 500

    def test_run_honours_stop_event(self, registry):
        service = ImplicationService(
            ServeConfig(source="profile:uniform", batch_size=50, num_bitmaps=8),
            profiles={"case": small_conditions()},
        )
        stop = threading.Event()
        thread = threading.Thread(target=service.run, args=(stop,))
        thread.start()
        deadline = time.monotonic() + 30.0
        while service.cursor == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        stop.set()
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert service.store.status == "stopped"
        # The boundary commit covers everything ingested.
        assert service.store.get("case").cursor == service.cursor > 0


class TestDurability:
    def test_stop_resume_matches_uninterrupted_digests(self, registry, tmp_path):
        config = ServeConfig(
            source="profile:bursty", tuples=1200, batch_size=150,
            num_bitmaps=8, seed=4,
        )
        uninterrupted = ImplicationService(config)
        while uninterrupted.ingest_step():
            pass
        want = {
            name: snapshot.digest
            for name, snapshot in uninterrupted.store.all().items()
        }

        interrupted = ImplicationService(config, checkpoint_dir=str(tmp_path))
        for _ in range(4):
            interrupted.ingest_step()
        del interrupted

        resumed = ImplicationService(config, checkpoint_dir=str(tmp_path))
        assert resumed.restored_generation is not None
        assert resumed.cursor == 600
        while resumed.ingest_step():
            pass
        got = {
            name: snapshot.digest for name, snapshot in resumed.store.all().items()
        }
        assert got == want

    def test_resume_rejects_mismatched_shape(self, registry, tmp_path):
        config = ServeConfig(
            source="profile:uniform", tuples=400, batch_size=100, num_bitmaps=8
        )
        service = ImplicationService(config, checkpoint_dir=str(tmp_path))
        service.ingest_step()
        with pytest.raises(ValueError, match="shaped"):
            ImplicationService(
                ServeConfig(
                    source="profile:uniform", tuples=400, batch_size=50,
                    num_bitmaps=8,
                ),
                checkpoint_dir=str(tmp_path),
            )

    def test_restored_metrics_fold_into_registry(self, registry, tmp_path):
        config = ServeConfig(
            source="profile:uniform", tuples=300, batch_size=100, num_bitmaps=8
        )
        service = ImplicationService(config, checkpoint_dir=str(tmp_path))
        while service.ingest_step():
            pass
        tuples_before = registry.counter("serving.tuples").value
        assert tuples_before == 300
        set_registry(MetricsRegistry())
        try:
            ImplicationService(config, checkpoint_dir=str(tmp_path))
            from repro.observability import get_registry

            assert get_registry().counter("serving.tuples").value == tuples_before
            assert get_registry().counter("serving.restores").value == 1
        finally:
            set_registry(registry)


@pytest.mark.slow
class TestConcurrentReads:
    def test_reads_during_ingest_are_never_torn(self, registry):
        """Reader threads hammer the store while ingest runs; every digest
        they observe must (a) match its own snapshot's decoded payload and
        (b) equal the offline single pass over that cursor's prefix."""
        lhs, rhs = generate_stream("duplicate_heavy", 9, 2000)
        service = ImplicationService(
            ServeConfig(batch_size=125, num_bitmaps=8, seed=6),
            source=ArraySource(lhs, rhs, batch_size=125),
            profiles={"case": small_conditions()},
        )
        observed: dict[int, str] = {}
        torn: list[str] = []
        done = threading.Event()

        def reader() -> None:
            while not done.is_set():
                snapshot = service.store.get("case")
                digest = estimator_state_digest(snapshot.estimator)
                if digest != snapshot.digest:
                    torn.append(
                        f"cursor {snapshot.cursor}: served digest "
                        f"{snapshot.digest[:12]} != decoded {digest[:12]}"
                    )
                observed[snapshot.cursor] = snapshot.digest

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        while service.ingest_step():
            pass
        done.set()
        for thread in threads:
            thread.join()
        assert torn == []
        assert len(observed) > 1  # readers saw the state advance
        for cursor, digest in observed.items():
            reference = offline_reference(
                service.templates["case"], lhs[:cursor], rhs[:cursor],
                batch_size=125,
            )
            assert digest == estimator_state_digest(reference), (
                f"digest at cursor {cursor} does not match a checkpoint "
                f"generation of the stream"
            )

    def test_metrics_endpoint_never_500s_under_load(self, registry):
        service = ImplicationService(
            ServeConfig(source="profile:uniform", batch_size=200, num_bitmaps=8),
            profiles={"case": small_conditions()},
        )
        httpd = build_server(service)
        port = httpd.server_address[1]
        http_thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        http_thread.start()
        stop = threading.Event()
        ingest = threading.Thread(target=service.run, args=(stop,), daemon=True)
        ingest.start()
        statuses: list[int] = []
        errors: list[str] = []

        def client() -> None:
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                try:
                    status, _, _ = get(port, "/metrics", timeout=10.0)
                    statuses.append(status)
                except Exception as error:  # noqa: BLE001 - recorded below
                    errors.append(repr(error))

        clients = [threading.Thread(target=client) for _ in range(8)]
        for thread in clients:
            thread.start()
        for thread in clients:
            thread.join()
        stop.set()
        ingest.join(timeout=30.0)
        httpd.shutdown()
        httpd.server_close()
        assert errors == []
        assert statuses and set(statuses) == {200}


class TestHTTPEndpoints:
    @pytest.fixture()
    def served(self, registry):
        lhs, rhs = generate_stream("skewed", 12, 600)
        service = ImplicationService(
            ServeConfig(batch_size=200, num_bitmaps=8),
            source=ArraySource(lhs, rhs, batch_size=200),
            profiles={
                "strict": ImplicationConditions(min_support=4),
                "loose": ImplicationConditions(min_support=1),
            },
        )
        while service.ingest_step():
            pass
        httpd = build_server(service)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        yield service, httpd.server_address[1], lhs
        httpd.shutdown()
        httpd.server_close()

    def test_health(self, served):
        service, port, _ = served
        status, body, _ = get(port, "/health")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "drained"
        assert health["cursor"] == 600
        assert health["profiles"] == ["strict", "loose"]

    def test_profiles_lists_both(self, served):
        _, port, _ = served
        status, body, _ = get(port, "/profiles")
        assert status == 200
        assert set(json.loads(body)) == {"strict", "loose"}

    def test_query_by_profile_and_stat(self, served):
        service, port, _ = served
        status, body, _ = get(port, "/query?profile=strict&stat=implication")
        assert status == 200
        payload = json.loads(body)
        snapshot = service.store.get("strict")
        assert payload["value"] == snapshot.stats["implication"]
        assert payload["digest"] == snapshot.digest

    def test_query_by_conditions(self, served):
        _, port, _ = served
        status, body, _ = get(port, "/query?min_support=4")
        assert status == 200
        assert json.loads(body)["profile"] == "strict"

    def test_query_errors(self, served):
        _, port, _ = served
        assert get(port, "/query?profile=missing")[0] == 404
        assert get(port, "/query?min_support=99")[0] == 404
        assert get(port, "/query?profile=strict&stat=bogus")[0] == 400
        assert get(port, "/query")[0] == 400
        assert get(port, "/nope")[0] == 404

    def test_top_lookup(self, served):
        service, port, lhs = served
        itemset = int(lhs[0])
        status, body, _ = get(port, f"/top?profile=loose&itemset={itemset}")
        assert status == 200
        lookup = json.loads(body)["lookup"]
        assert lookup["itemset"] == itemset
        assert {"bitmap", "position", "zone", "tracked"} <= set(lookup)

    def test_snapshot_bytes_roundtrip(self, served):
        service, port, _ = served
        status, body, headers = get(port, "/snapshot?profile=strict")
        assert status == 200
        assert headers["Content-Type"] == "application/octet-stream"
        decoded = ImplicationCountEstimator.from_bytes(body)
        assert estimator_state_digest(decoded) == headers["X-Repro-Digest"]
        assert int(headers["X-Repro-Cursor"]) == 600


@pytest.mark.slow
class TestServeSubprocess:
    """The CLI process end to end: SIGTERM mid-ingest, resume, digest."""

    def _spawn(self, ckdir: Path, extra: list[str]):
        command = [
            sys.executable, "-m", "repro.cli", "serve",
            "--source", "profile:skewed", "--tuples", "30000",
            "--batch-size", "2048", "--num-bitmaps", "8",
            "--checkpoint-dir", str(ckdir), "--workers", "2",
            "--profiles", "support-only,noisy-confidence", *extra,
        ]
        env = {"PYTHONPATH": str(SRC_ROOT), "PATH": "/usr/bin:/bin"}
        import os

        env.update({k: v for k, v in os.environ.items() if k not in env})
        proc = subprocess.Popen(
            command, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, text=True,
        )
        listening = json.loads(proc.stdout.readline())
        assert listening["event"] == "listening", listening
        return proc, listening

    def test_sigterm_resume_reaches_uninterrupted_digest(self, tmp_path):
        proc, listening = self._spawn(tmp_path, [])
        port = listening["port"]
        try:
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                health = json.loads(get(port, "/health")[1])
                if health["cursor"] >= 10000:
                    break
                time.sleep(0.05)
            assert health["cursor"] >= 10000, "service never made progress"
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
        stopped = json.loads(out.strip().splitlines()[-1])
        assert stopped["status"] == "stopped"
        assert 0 < stopped["cursor"] < 30000
        assert "resource_tracker" not in err, err

        proc, listening = self._spawn(tmp_path, ["--exit-when-drained"])
        try:
            assert listening["resumed_generation"] is not None
            assert listening["cursor"] == stopped["cursor"]
            out, err = proc.communicate(timeout=240)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
        final = json.loads(out.strip().splitlines()[-1])
        assert final["cursor"] == 30000
        assert "resource_tracker" not in err, err

        # The resumed digest must equal an uninterrupted run's.
        config = ServeConfig(
            source="profile:skewed", tuples=30000, batch_size=2048,
            num_bitmaps=8, workers=2, profiles=("support-only", "noisy-confidence"),
        )
        reference = ImplicationService(config)
        while reference.ingest_step():
            pass
        want = reference.store.get("support-only").digest
        shutdown_runtime()
        assert final["digest"] == want
