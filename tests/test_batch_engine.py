"""State-equivalence tests for the batch ingest engine.

The engine's three layers — chunk-level pair aggregation, grouped dispatch
(:meth:`NIPSBitmap.update_group`), and sharded ingest-then-merge
(:class:`repro.engine.ShardedIngestor`) — are performance transformations
of the scalar per-tuple loop.  These tests pin them to the scalar
reference *bit for bit*: same fringe geometry, same per-cell
:class:`ItemsetState` counters, same readouts, across datasets, hash
families and stream permutations.

The one documented exception is the sticky-semantics order dependence
inherited from :meth:`ItemsetState.merge` (a confidence dip visible only
in one interleaving), which gets its own targeted tests at the end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.conditions import ImplicationConditions
from repro.core.estimator import ImplicationCountEstimator
from repro.core.tracker import ItemsetState
from repro.datasets.network import NetworkTrafficGenerator, ScenarioEvent
from repro.datasets.synthetic import generate_dataset_one
from repro.distributed.coordinator import Coordinator
from repro.engine import ShardedIngestor
from repro.sketch.hashing import HashFamily, encode_items

FAMILIES = ["splitmix", "tabulation", "polynomial"]


def canonical_state(estimator: ImplicationCountEstimator):
    """Full observable state of an estimator, in comparable form."""
    bitmaps = []
    for bitmap in estimator.bitmaps:
        cells = {}
        for position, cell in bitmap._cells.items():
            cells[position] = {
                itemset: (
                    state.support,
                    None if state.partners is None else dict(state.partners),
                    state.multiplicity_exceeded,
                    state.violated,
                )
                for itemset, state in cell.items()
            }
        bitmaps.append(
            (
                bitmap.fringe_start,
                bitmap.rightmost_hashed,
                frozenset(bitmap._value_one),
                cells,
            )
        )
    return (
        bitmaps,
        estimator.implication_count(),
        estimator.nonimplication_count(),
        estimator.supported_distinct_count(),
    )


def dataset_one_stream():
    data = generate_dataset_one(300, 150, c=2, seed=11)
    return data.conditions, data.lhs, data.rhs


def network_stream():
    """A Table-1-style router feed: does the destination imply the source?"""
    generator = NetworkTrafficGenerator(
        num_sources=150,
        num_destinations=60,
        events=[
            ScenarioEvent(
                "ddos", start=800, duration=600, intensity=0.7,
                target="D-hot", spread=4, pool=200,
            )
        ],
        seed=3,
    )
    rows = list(generator.tuples(4000))
    lhs = encode_items(row[1] for row in rows)  # destination
    rhs = encode_items(row[0] for row in rows)  # source
    conditions = ImplicationConditions(
        max_multiplicity=6, min_support=5, top_c=2, min_top_confidence=0.5
    )
    return conditions, lhs, rhs


STREAMS = {"dataset-one": dataset_one_stream, "network": network_stream}


def make_estimator(conditions, family: str) -> ImplicationCountEstimator:
    return ImplicationCountEstimator(
        conditions,
        num_bitmaps=32,
        seed=9,
        hash_function=HashFamily(family, seed=9).one(),
    )


def scalar_reference(conditions, family, lhs, rhs) -> ImplicationCountEstimator:
    estimator = make_estimator(conditions, family)
    for a, b in zip(lhs.tolist(), rhs.tolist()):
        estimator.update(a, b)
    return estimator


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("stream_name", sorted(STREAMS))
class TestBatchEquivalence:
    """Aggregation and grouped dispatch vs the scalar loop, bit for bit."""

    @pytest.mark.parametrize("permutation_seed", [None, 0, 1])
    def test_batch_paths_match_scalar(
        self, stream_name, family, permutation_seed
    ):
        conditions, lhs, rhs = STREAMS[stream_name]()
        if permutation_seed is not None:
            order = np.random.default_rng(permutation_seed).permutation(len(lhs))
            lhs, rhs = lhs[order], rhs[order]
        reference = canonical_state(
            scalar_reference(conditions, family, lhs, rhs)
        )
        for kwargs in (
            {"aggregate": True, "grouped": False},
            {"aggregate": False, "grouped": True},
            {"aggregate": True, "grouped": True},
        ):
            estimator = make_estimator(conditions, family)
            estimator.update_batch(lhs, rhs, **kwargs)
            assert canonical_state(estimator) == reference, kwargs

    def test_sharded_ingest_matches_scalar(self, stream_name, family):
        conditions, lhs, rhs = STREAMS[stream_name]()
        reference = canonical_state(
            scalar_reference(conditions, family, lhs, rhs)
        )
        template = make_estimator(conditions, family)
        for workers in (1, 2):
            merged = ShardedIngestor(template, workers=workers).ingest(lhs, rhs)
            assert canonical_state(merged) == reference, workers


class TestShardedEngine:
    def test_coordinator_wiring(self):
        """ingest_sharded registers one snapshot per shard, merge matches."""
        conditions, lhs, rhs = dataset_one_stream()
        template = make_estimator(conditions, "splitmix")
        coordinator = Coordinator(template)
        coordinator.ingest_sharded(lhs, rhs, workers=2)
        assert coordinator.node_count == 2
        direct = make_estimator(conditions, "splitmix")
        direct.update_batch(lhs, rhs)
        assert canonical_state(coordinator.merged_estimator()) == canonical_state(
            direct
        )

    def test_payload_names_are_stable(self):
        conditions, lhs, rhs = dataset_one_stream()
        template = make_estimator(conditions, "splitmix")
        payloads = ShardedIngestor(template, workers=2).ingest_payloads(lhs, rhs)
        assert [name for name, _ in payloads] == ["shard-0", "shard-1"]

    def test_worker_validation(self):
        conditions, _, _ = dataset_one_stream()
        template = make_estimator(conditions, "splitmix")
        with pytest.raises(ValueError):
            ShardedIngestor(template, workers=0)

    def test_more_workers_than_tuples(self):
        conditions, lhs, rhs = dataset_one_stream()
        template = make_estimator(conditions, "splitmix")
        merged = ShardedIngestor(template, workers=4).ingest(lhs[:3], rhs[:3])
        assert merged.tuples_seen == 3


class TestMergeOrderDependence:
    """The documented caveat: sticky confidence dips are interleaving-bound."""

    CONDITIONS = ImplicationConditions(
        min_support=2, top_c=1, min_top_confidence=0.6
    )

    def test_state_merge_keeps_sub_stream_violation(self):
        """A dip inside one sub-stream latches, though the interleaved
        single-pass order never dips."""
        interleaved = ItemsetState()
        for partner in ("b1", "b1", "b2", "b1"):
            interleaved.observe(partner, self.CONDITIONS)
        assert not interleaved.violated  # confidence never fell below 0.6

        left = ItemsetState()
        for partner in ("b1", "b1"):
            left.observe(partner, self.CONDITIONS)
        right = ItemsetState()
        for partner in ("b2", "b1"):
            right.observe(partner, self.CONDITIONS)
        assert right.violated  # 1/2 < 0.6 at support 2, inside that shard

        left.merge(right, self.CONDITIONS)
        assert left.violated  # sticky across the merge

    def test_sharded_ingest_can_miss_interleaving_dip(self):
        """The mirror image: the single-pass order dips mid-stream, but each
        shard stays below minimum support (never evaluated) and every
        pairwise-merge prefix stays above theta, so the merged sketch keeps
        the cell the single pass wiped."""
        conditions = ImplicationConditions(
            min_support=3, top_c=1, min_top_confidence=0.65
        )
        # Stream for one itemset: partner counts dip to 3/5 = 0.6 < 0.65 at
        # support 5, then recover to 4/6.  Shards of two tuples each hold
        # support 2 < tau; the pairwise fold evaluates at 3/4 = 0.75 and
        # 4/6 = 0.667, both above theta.
        itemset = np.full(6, 7, dtype=np.uint64)
        partners = np.array([1, 1, 1, 2, 2, 1], dtype=np.uint64)

        def find_cell(estimator):
            for bitmap in estimator.bitmaps:
                for cell in bitmap._cells.values():
                    if 7 in cell:
                        return cell[7]
            return None

        single = ImplicationCountEstimator(conditions, num_bitmaps=4, seed=0)
        single.update_batch(itemset, partners, aggregate=False, grouped=False)
        # The dip latched a violation; _assign_one wiped the cell.
        assert find_cell(single) is None

        template = ImplicationCountEstimator(conditions, num_bitmaps=4, seed=0)
        merged = ShardedIngestor(template, workers=3).ingest(itemset, partners)
        survivor = find_cell(merged)
        assert survivor is not None
        assert survivor.support == 6
        assert not survivor.violated
        assert canonical_state(merged) != canonical_state(single)
