"""State-equivalence tests for the batch ingest engine.

The engine's three layers — chunk-level pair aggregation, grouped dispatch
(:meth:`NIPSBitmap.update_group`), and sharded ingest-then-merge
(:class:`repro.engine.ShardedIngestor`) — are performance transformations
of the scalar per-tuple loop.  These tests pin them to the scalar
reference *bit for bit*: same fringe geometry, same per-cell
:class:`ItemsetState` counters, same readouts, across datasets, hash
families and stream permutations.

The one documented exception is the sticky-semantics order dependence
inherited from :meth:`ItemsetState.merge` (a confidence dip visible only
in one interleaving), which gets its own targeted tests at the end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.conditions import ImplicationConditions
from repro.core.estimator import ImplicationCountEstimator
from repro.core.tracker import ItemsetState
from repro.datasets.network import NetworkTrafficGenerator, ScenarioEvent
from repro.datasets.synthetic import generate_dataset_one
from repro.distributed.coordinator import Coordinator
from repro.engine import ShardedIngestor
from repro.kernels import available_backends
from repro.kernels import resolve as resolve_kernels
from repro.sketch.hashing import HashFamily, encode_items

FAMILIES = ["splitmix", "tabulation", "polynomial"]

#: Kernel backends runnable on this host ("python" always; "compiled"
#: where the C kernel builds).  The equivalence suites run under each.
BACKENDS = available_backends()


def canonical_state(estimator: ImplicationCountEstimator):
    """Full observable state of an estimator, in comparable form."""
    bitmaps = []
    for bitmap in estimator.bitmaps:
        cells = {}
        for position, cell in bitmap._cells.items():
            cells[position] = {
                itemset: (
                    state.support,
                    None if state.partners is None else dict(state.partners),
                    state.multiplicity_exceeded,
                    state.violated,
                )
                for itemset, state in cell.items()
            }
        bitmaps.append(
            (
                bitmap.fringe_start,
                bitmap.rightmost_hashed,
                frozenset(bitmap._value_one),
                cells,
            )
        )
    return (
        bitmaps,
        estimator.implication_count(),
        estimator.nonimplication_count(),
        estimator.supported_distinct_count(),
    )


def dataset_one_stream():
    data = generate_dataset_one(300, 150, c=2, seed=11)
    return data.conditions, data.lhs, data.rhs


def network_stream():
    """A Table-1-style router feed: does the destination imply the source?"""
    generator = NetworkTrafficGenerator(
        num_sources=150,
        num_destinations=60,
        events=[
            ScenarioEvent(
                "ddos", start=800, duration=600, intensity=0.7,
                target="D-hot", spread=4, pool=200,
            )
        ],
        seed=3,
    )
    rows = list(generator.tuples(4000))
    lhs = encode_items(row[1] for row in rows)  # destination
    rhs = encode_items(row[0] for row in rows)  # source
    conditions = ImplicationConditions(
        max_multiplicity=6, min_support=5, top_c=2, min_top_confidence=0.5
    )
    return conditions, lhs, rhs


STREAMS = {"dataset-one": dataset_one_stream, "network": network_stream}


def make_estimator(
    conditions, family: str, kernels: str | None = None
) -> ImplicationCountEstimator:
    return ImplicationCountEstimator(
        conditions,
        num_bitmaps=32,
        seed=9,
        hash_function=HashFamily(family, seed=9).one(),
        kernels=kernels,
    )


def scalar_reference(conditions, family, lhs, rhs) -> ImplicationCountEstimator:
    estimator = make_estimator(conditions, family)
    for a, b in zip(lhs.tolist(), rhs.tolist()):
        estimator.update(a, b)
    return estimator


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("stream_name", sorted(STREAMS))
class TestBatchEquivalence:
    """Aggregation and grouped dispatch vs the scalar loop, bit for bit.

    Parametrized over every runnable kernel backend: the compiled C
    engine must land on the identical state the python reference does,
    path by path (the test-suite face of the
    ``kernel-backend-equivalence`` contract).
    """

    @pytest.mark.parametrize("permutation_seed", [None, 0, 1])
    def test_batch_paths_match_scalar(
        self, stream_name, family, permutation_seed, backend
    ):
        conditions, lhs, rhs = STREAMS[stream_name]()
        if permutation_seed is not None:
            order = np.random.default_rng(permutation_seed).permutation(len(lhs))
            lhs, rhs = lhs[order], rhs[order]
        reference = canonical_state(
            scalar_reference(conditions, family, lhs, rhs)
        )
        for kwargs in (
            {"aggregate": False, "grouped": False},
            {"aggregate": True, "grouped": False},
            {"aggregate": False, "grouped": True},
            {"aggregate": True, "grouped": True},
        ):
            estimator = make_estimator(conditions, family, kernels=backend)
            estimator.update_batch(lhs, rhs, **kwargs)
            assert canonical_state(estimator) == reference, (backend, kwargs)

    def test_sharded_ingest_matches_scalar(self, stream_name, family, backend):
        conditions, lhs, rhs = STREAMS[stream_name]()
        reference = canonical_state(
            scalar_reference(conditions, family, lhs, rhs)
        )
        template = make_estimator(conditions, family)
        for workers in (1, 2):
            merged = ShardedIngestor(
                template, workers=workers, kernels=backend
            ).ingest(lhs, rhs)
            assert canonical_state(merged) == reference, (backend, workers)


class TestShardedEngine:
    def test_coordinator_wiring(self):
        """ingest_sharded registers one snapshot per shard, merge matches."""
        conditions, lhs, rhs = dataset_one_stream()
        template = make_estimator(conditions, "splitmix")
        coordinator = Coordinator(template)
        coordinator.ingest_sharded(lhs, rhs, workers=2)
        assert coordinator.node_count == 2
        direct = make_estimator(conditions, "splitmix")
        direct.update_batch(lhs, rhs)
        assert canonical_state(coordinator.merged_estimator()) == canonical_state(
            direct
        )

    def test_payload_names_are_stable(self):
        conditions, lhs, rhs = dataset_one_stream()
        template = make_estimator(conditions, "splitmix")
        payloads = ShardedIngestor(template, workers=2).ingest_payloads(lhs, rhs)
        assert [name for name, _ in payloads] == ["shard-0", "shard-1"]

    def test_worker_validation(self):
        conditions, _, _ = dataset_one_stream()
        template = make_estimator(conditions, "splitmix")
        with pytest.raises(ValueError):
            ShardedIngestor(template, workers=0)

    def test_more_workers_than_tuples(self):
        conditions, lhs, rhs = dataset_one_stream()
        template = make_estimator(conditions, "splitmix")
        merged = ShardedIngestor(template, workers=4).ingest(lhs[:3], rhs[:3])
        assert merged.tuples_seen == 3


ALL_PATHS = [
    {"aggregate": False, "grouped": False},
    {"aggregate": False, "grouped": True},
    {"aggregate": True, "grouped": False},
    {"aggregate": True, "grouped": True},
]


class TestTransientFringeGeometry:
    """Zone-0 floats must fire at their stream positions in every path.

    Settling a batch's final fringe geometry up front (or dispatching
    high cells first) lets a cell ride out an overflow the scalar order
    takes under the transient narrower window — the regression pinned
    here (review finding on the original geometry pre-pass).
    """

    # Overflow is the only decision driver: support never reaches tau.
    CONDITIONS = ImplicationConditions(min_support=10**6)

    @staticmethod
    def keys_hashing_to_cell(estimator, cell, count):
        """Encoded itemsets this estimator places in ``cell`` (bitmap 0)."""
        assert estimator.num_bitmaps == 1
        found = []
        raw = 1
        while len(found) < count:
            hashed = estimator.hash_function(raw)
            position = min(
                (hashed & -hashed).bit_length() - 1 if hashed else 64,
                estimator.length - 1,
            )
            if position == cell:
                found.append(raw)
            raw += 1
        return found

    def make(self):
        return ImplicationCountEstimator(self.CONDITIONS, num_bitmaps=1, seed=5)

    def run_all_paths(self, lhs, rhs):
        """Scalar-reference state and the assertion over every batch path
        under every runnable kernel backend (float timing is exactly where
        a compiled replay could drift)."""
        scalar = self.make()
        for a, b in zip(lhs.tolist(), rhs.tolist()):
            scalar.update(a, b)
        reference = canonical_state(scalar)
        for backend in BACKENDS:
            for kwargs in ALL_PATHS:
                estimator = self.make()
                estimator.kernels = resolve_kernels(backend)
                estimator.update_batch(lhs, rhs, **kwargs)
                assert canonical_state(estimator) == reference, (backend, kwargs)
        return scalar

    def test_overflow_under_transient_window_then_float(self):
        """Five distinct itemsets overflow cell 2 (capacity 4 while the
        fringe is [0, 3]); a later cell-5 row floats the fringe.  Scalar
        order overflows first, so the float fixates cell 2 and lands
        ``fringe_start == 3`` — the pre-pass used to widen the window
        first and keep cell 2 alive at ``fringe_start == 2``."""
        probe = self.make()
        low = self.keys_hashing_to_cell(probe, 2, 5)
        high = self.keys_hashing_to_cell(probe, 5, 1)
        lhs = np.array(low + high, dtype=np.uint64)
        rhs = np.arange(1, len(lhs) + 1, dtype=np.uint64)
        scalar = self.run_all_paths(lhs, rhs)
        assert scalar.bitmaps[0].fringe_start == 3  # the overflow latched

    def test_float_interleaved_with_cell_fill(self):
        """The mirror image: the float lands mid-fill (3 itemsets, float,
        2 more), so scalar order *widens* the window before the 5th
        distinct itemset and no overflow happens.  Grouped dispatch must
        split the cell-2 run at the float instead of replaying it whole
        under the narrow window."""
        probe = self.make()
        low = self.keys_hashing_to_cell(probe, 2, 5)
        high = self.keys_hashing_to_cell(probe, 5, 1)
        lhs = np.array(low[:3] + high + low[3:], dtype=np.uint64)
        rhs = np.arange(1, len(lhs) + 1, dtype=np.uint64)
        scalar = self.run_all_paths(lhs, rhs)
        bitmap = scalar.bitmaps[0]
        assert bitmap.fringe_start == 2  # float only; no overflow latched
        assert len(bitmap._cells[2]) == 5  # all five itemsets survived


class TestMergeOrderDependence:
    """The documented caveat: sticky confidence dips are interleaving-bound."""

    CONDITIONS = ImplicationConditions(
        min_support=2, top_c=1, min_top_confidence=0.6
    )

    def test_state_merge_keeps_sub_stream_violation(self):
        """A dip inside one sub-stream latches, though the interleaved
        single-pass order never dips."""
        interleaved = ItemsetState()
        for partner in ("b1", "b1", "b2", "b1"):
            interleaved.observe(partner, self.CONDITIONS)
        assert not interleaved.violated  # confidence never fell below 0.6

        left = ItemsetState()
        for partner in ("b1", "b1"):
            left.observe(partner, self.CONDITIONS)
        right = ItemsetState()
        for partner in ("b2", "b1"):
            right.observe(partner, self.CONDITIONS)
        assert right.violated  # 1/2 < 0.6 at support 2, inside that shard

        left.merge(right, self.CONDITIONS)
        assert left.violated  # sticky across the merge

    def test_sharded_ingest_can_miss_interleaving_dip(self):
        """The mirror image: the single-pass order dips mid-stream, but each
        shard stays below minimum support (never evaluated) and every
        pairwise-merge prefix stays above theta, so the merged sketch keeps
        the cell the single pass wiped."""
        conditions = ImplicationConditions(
            min_support=3, top_c=1, min_top_confidence=0.65
        )
        # Stream for one itemset: partner counts dip to 3/5 = 0.6 < 0.65 at
        # support 5, then recover to 4/6.  Shards of two tuples each hold
        # support 2 < tau; the pairwise fold evaluates at 3/4 = 0.75 and
        # 4/6 = 0.667, both above theta.
        itemset = np.full(6, 7, dtype=np.uint64)
        partners = np.array([1, 1, 1, 2, 2, 1], dtype=np.uint64)

        def find_cell(estimator):
            for bitmap in estimator.bitmaps:
                for cell in bitmap._cells.values():
                    if 7 in cell:
                        return cell[7]
            return None

        single = ImplicationCountEstimator(conditions, num_bitmaps=4, seed=0)
        single.update_batch(itemset, partners, aggregate=False, grouped=False)
        # The dip latched a violation; _assign_one wiped the cell.
        assert find_cell(single) is None

        template = ImplicationCountEstimator(conditions, num_bitmaps=4, seed=0)
        merged = ShardedIngestor(template, workers=3).ingest(itemset, partners)
        survivor = find_cell(merged)
        assert survivor is not None
        assert survivor.support == 6
        assert not survivor.violated
        assert canonical_state(merged) != canonical_state(single)
