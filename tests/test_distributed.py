"""Tests for the distributed aggregation layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import ExactImplicationCounter
from repro.core.estimator import ImplicationCountEstimator
from repro.datasets.synthetic import generate_dataset_one
from repro.distributed import AggregationTree, Coordinator, StreamNode


def make_setup(num_nodes: int = 4, seed: int = 5):
    data = generate_dataset_one(500, 250, c=1, seed=seed)
    template = ImplicationCountEstimator(data.conditions, seed=seed + 1)
    nodes = [StreamNode(f"node-{i}", template) for i in range(num_nodes)]
    # Shard by itemset so every itemset's history stays on one node.
    shard_of = (data.lhs % np.uint64(num_nodes)).astype(np.int64)
    for index, node in enumerate(nodes):
        mask = shard_of == index
        node.observe_batch(data.lhs[mask], data.rhs[mask])
    return data, template, nodes


class TestStreamNode:
    def test_nodes_share_placement_hash(self):
        __, template, nodes = make_setup()
        assert all(
            node.estimator.hash_function is template.hash_function
            for node in nodes
        )

    def test_snapshot_accounting(self):
        __, __t, nodes = make_setup()
        node = nodes[0]
        payload = node.snapshot()
        assert node.snapshots_sent == 1
        assert node.bytes_sent == len(payload)

    def test_local_count_is_partial(self):
        data, __, nodes = make_setup()
        local = sum(node.local_implication_count() for node in nodes)
        # Each node holds a quarter of the itemsets; summed locals should be
        # in the neighbourhood of the global truth.
        assert local == pytest.approx(data.truth.satisfied, rel=0.5)


class TestCoordinator:
    def test_merged_estimate_near_truth(self):
        data, template, nodes = make_setup()
        coordinator = Coordinator(template)
        coordinator.sync(nodes)
        assert coordinator.node_count == 4
        assert coordinator.implication_count() == pytest.approx(
            data.truth.satisfied, rel=0.4
        )

    def test_resent_snapshot_does_not_double_count(self):
        data, template, nodes = make_setup()
        coordinator = Coordinator(template)
        coordinator.sync(nodes)
        first = coordinator.implication_count()
        # The same node re-sends (e.g. after a retry): count must not move.
        coordinator.receive(nodes[0].name, nodes[0].snapshot())
        assert coordinator.implication_count() == first

    def test_incremental_node_arrival(self):
        data, template, nodes = make_setup()
        coordinator = Coordinator(template)
        coordinator.receive(nodes[0].name, nodes[0].snapshot())
        partial = coordinator.supported_distinct_count()
        coordinator.sync(nodes)
        assert coordinator.supported_distinct_count() > partial

    def test_bandwidth_accounting(self):
        __, template, nodes = make_setup()
        coordinator = Coordinator(template)
        coordinator.sync(nodes)
        assert coordinator.bytes_received == sum(n.bytes_sent for n in nodes)


class TestCoordinatorQuarantine:
    def test_corrupt_payload_rejected_and_counted(self):
        __, template, nodes = make_setup()
        coordinator = Coordinator(template)
        assert coordinator.receive("evil", b"NIPS\x01garbage") is False
        assert coordinator.node_count == 0
        assert coordinator.rejected_payloads == {"evil": 1}
        assert "corrupt payload" in coordinator.rejection_reasons["evil"]

    def test_truncated_payload_rejected(self):
        __, template, nodes = make_setup()
        coordinator = Coordinator(template)
        good = nodes[0].snapshot()
        assert coordinator.receive("node-0", good[: len(good) // 2]) is False
        assert coordinator.node_count == 0

    def test_geometry_incompatible_payload_rejected(self):
        data, template, nodes = make_setup()
        coordinator = Coordinator(template)
        alien = ImplicationCountEstimator(
            data.conditions, num_bitmaps=16, seed=99
        )
        assert coordinator.receive("alien", alien.to_bytes()) is False
        assert coordinator.rejected_payloads == {"alien": 1}
        assert "geometry-incompatible" in coordinator.rejection_reasons["alien"]

    def test_bad_snapshot_never_poisons_merged_estimator(self):
        """The acceptance property: quarantine leaves the merge untouched."""
        data, template, nodes = make_setup()
        coordinator = Coordinator(template)
        coordinator.sync(nodes)
        before_bytes = coordinator.bytes_received
        before = coordinator.merged_estimator().to_bytes()
        # A corrupt re-send from a known node and junk from a stranger.
        good = nodes[0].snapshot()
        mangled = good[:40] + bytes(reversed(good[40:80])) + good[80:]
        assert coordinator.receive(nodes[0].name, mangled) is False
        assert coordinator.receive("stranger", b"\x00" * 64) is False
        assert coordinator.merged_estimator().to_bytes() == before
        assert coordinator.bytes_received == before_bytes
        assert coordinator.node_count == 4

    def test_node_recovers_after_quarantine(self):
        """A later good snapshot from a quarantined node is accepted."""
        __, template, nodes = make_setup()
        coordinator = Coordinator(template)
        assert coordinator.receive(nodes[0].name, b"junk") is False
        assert coordinator.receive(nodes[0].name, nodes[0].snapshot()) is True
        assert coordinator.node_count == 1
        assert coordinator.rejected_payloads[nodes[0].name] == 1

    def test_rejection_bookkeeping_is_bounded(self):
        """Hostile node-name churn cannot grow the per-name dicts unboundedly."""
        __, template, nodes = make_setup()
        coordinator = Coordinator(template, max_tracked_rejections=8)
        for index in range(50):
            assert coordinator.receive(f"ghost-{index}", b"junk") is False
        assert len(coordinator.rejected_payloads) == 8
        assert len(coordinator.rejection_reasons) == 8
        assert coordinator.rejections_dropped == 42
        # The aggregate refusal count still reflects every rejection.
        assert sum(coordinator.rejected_payloads.values()) == 8
        # Already-tracked names keep updating even once the table is full.
        assert coordinator.receive("ghost-0", b"junk again") is False
        assert coordinator.rejected_payloads["ghost-0"] == 2
        assert coordinator.rejections_dropped == 42

    def test_max_tracked_rejections_validated(self):
        __, template, __ = make_setup()
        with pytest.raises(ValueError, match="max_tracked_rejections"):
            Coordinator(template, max_tracked_rejections=0)


class TestIngestShardedEpochs:
    def test_second_ingest_does_not_replace_first(self):
        """Regression: shard names were reused across calls, so the second
        stream's snapshots silently replaced the first's."""
        data, template, __ = make_setup()
        half = len(data.lhs) // 2
        coordinator = Coordinator(template)
        coordinator.ingest_sharded(data.lhs[:half], data.rhs[:half], workers=2)
        coordinator.ingest_sharded(data.lhs[half:], data.rhs[half:], workers=2)
        assert coordinator.node_count == 4  # 2 epochs x 2 shards
        merged = coordinator.merged_estimator()
        assert merged.tuples_seen == len(data.lhs)

    def test_epoch_namespacing_matches_single_ingest(self):
        """Two half-stream calls must agree with one full-stream call on
        the mergeable statistics."""
        data, template, __ = make_setup(seed=8)
        half = len(data.lhs) // 2
        split = Coordinator(template)
        split.ingest_sharded(data.lhs[:half], data.rhs[:half], workers=2)
        split.ingest_sharded(data.lhs[half:], data.rhs[half:], workers=2)
        whole = Coordinator(template)
        whole.ingest_sharded(data.lhs, data.rhs, workers=4)
        assert split.supported_distinct_count() == pytest.approx(
            whole.supported_distinct_count(), rel=0.2
        )

    def test_flags_passed_through(self):
        """aggregate/grouped reach the shard workers: scalar-replay mode
        must match a serial scalar-replay reference shard-for-shard."""
        from repro.engine import ShardedIngestor

        data, template, __ = make_setup(seed=12)
        coordinator = Coordinator(template)
        coordinator.ingest_sharded(
            data.lhs, data.rhs, workers=2, aggregate=False, grouped=False
        )
        reference = ShardedIngestor(template, workers=2)
        expected = dict(
            reference.ingest_payloads(
                data.lhs, data.rhs, aggregate=False, grouped=False
            )
        )
        stored = {
            name.split("/")[-1]: payload
            for name, payload in coordinator._latest.items()
        }
        assert stored == expected


class TestAggregationTree:
    def test_validation(self):
        __, template, nodes = make_setup()
        with pytest.raises(ValueError):
            AggregationTree(template, nodes, fanout=1)
        with pytest.raises(ValueError):
            AggregationTree(template, [], fanout=2)

    def test_root_matches_star_aggregation(self):
        data, template, nodes = make_setup(num_nodes=8)
        tree = AggregationTree(template, nodes, fanout=2)
        root = tree.sync()
        coordinator = Coordinator(template)
        coordinator.sync(nodes)
        # Merging is associative over the recorded events, so the tree and
        # the star must agree exactly.
        assert root.implication_count() == coordinator.implication_count()
        assert root.nonimplication_count() == coordinator.nonimplication_count()

    def test_depth(self):
        __, template, nodes = make_setup(num_nodes=8)
        assert AggregationTree(template, nodes, fanout=2).depth == 3
        assert AggregationTree(template, nodes, fanout=8).depth == 1

    def test_link_bytes_recorded_per_level(self):
        __, template, nodes = make_setup(num_nodes=8)
        tree = AggregationTree(template, nodes, fanout=2)
        tree.sync()
        assert len(tree.link_bytes) == tree.depth + 1
        assert all(level > 0 for level in tree.link_bytes)

    def test_small_contributions_survive_aggregation(self):
        """The paper's DDoS point: per-leaf counts too small to flag
        locally accumulate into a clear signal at the root."""
        from repro.core.conditions import ImplicationConditions

        conditions = ImplicationConditions(max_multiplicity=3, min_support=1)
        # Unbounded fringe: each leaf's true non-implication count is zero,
        # and without fixation noise the local estimates reflect that.
        template = ImplicationCountEstimator(conditions, fringe_size=None, seed=2)
        nodes = [StreamNode(f"edge-{i}", template) for i in range(8)]
        # 200 victims; each edge router sees only one connection per victim
        # per source — far below any local threshold.
        for victim in range(200):
            for source in range(8):
                nodes[source].observe(("victim", victim), ("src", source, victim))
        locally_flagged = sum(
            node.estimator.nonimplication_count() for node in nodes
        )
        root = AggregationTree(template, nodes, fanout=4).sync()
        globally_flagged = root.nonimplication_count()
        assert locally_flagged < globally_flagged
        assert globally_flagged == pytest.approx(200, rel=0.5)
