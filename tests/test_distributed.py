"""Tests for the distributed aggregation layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import ExactImplicationCounter
from repro.core.estimator import ImplicationCountEstimator
from repro.datasets.synthetic import generate_dataset_one
from repro.distributed import AggregationTree, Coordinator, StreamNode


def make_setup(num_nodes: int = 4, seed: int = 5):
    data = generate_dataset_one(500, 250, c=1, seed=seed)
    template = ImplicationCountEstimator(data.conditions, seed=seed + 1)
    nodes = [StreamNode(f"node-{i}", template) for i in range(num_nodes)]
    # Shard by itemset so every itemset's history stays on one node.
    shard_of = (data.lhs % np.uint64(num_nodes)).astype(np.int64)
    for index, node in enumerate(nodes):
        mask = shard_of == index
        node.observe_batch(data.lhs[mask], data.rhs[mask])
    return data, template, nodes


class TestStreamNode:
    def test_nodes_share_placement_hash(self):
        __, template, nodes = make_setup()
        assert all(
            node.estimator.hash_function is template.hash_function
            for node in nodes
        )

    def test_snapshot_accounting(self):
        __, __t, nodes = make_setup()
        node = nodes[0]
        payload = node.snapshot()
        assert node.snapshots_sent == 1
        assert node.bytes_sent == len(payload)

    def test_local_count_is_partial(self):
        data, __, nodes = make_setup()
        local = sum(node.local_implication_count() for node in nodes)
        # Each node holds a quarter of the itemsets; summed locals should be
        # in the neighbourhood of the global truth.
        assert local == pytest.approx(data.truth.satisfied, rel=0.5)


class TestCoordinator:
    def test_merged_estimate_near_truth(self):
        data, template, nodes = make_setup()
        coordinator = Coordinator(template)
        coordinator.sync(nodes)
        assert coordinator.node_count == 4
        assert coordinator.implication_count() == pytest.approx(
            data.truth.satisfied, rel=0.4
        )

    def test_resent_snapshot_does_not_double_count(self):
        data, template, nodes = make_setup()
        coordinator = Coordinator(template)
        coordinator.sync(nodes)
        first = coordinator.implication_count()
        # The same node re-sends (e.g. after a retry): count must not move.
        coordinator.receive(nodes[0].name, nodes[0].snapshot())
        assert coordinator.implication_count() == first

    def test_incremental_node_arrival(self):
        data, template, nodes = make_setup()
        coordinator = Coordinator(template)
        coordinator.receive(nodes[0].name, nodes[0].snapshot())
        partial = coordinator.supported_distinct_count()
        coordinator.sync(nodes)
        assert coordinator.supported_distinct_count() > partial

    def test_bandwidth_accounting(self):
        __, template, nodes = make_setup()
        coordinator = Coordinator(template)
        coordinator.sync(nodes)
        assert coordinator.bytes_received == sum(n.bytes_sent for n in nodes)


class TestAggregationTree:
    def test_validation(self):
        __, template, nodes = make_setup()
        with pytest.raises(ValueError):
            AggregationTree(template, nodes, fanout=1)
        with pytest.raises(ValueError):
            AggregationTree(template, [], fanout=2)

    def test_root_matches_star_aggregation(self):
        data, template, nodes = make_setup(num_nodes=8)
        tree = AggregationTree(template, nodes, fanout=2)
        root = tree.sync()
        coordinator = Coordinator(template)
        coordinator.sync(nodes)
        # Merging is associative over the recorded events, so the tree and
        # the star must agree exactly.
        assert root.implication_count() == coordinator.implication_count()
        assert root.nonimplication_count() == coordinator.nonimplication_count()

    def test_depth(self):
        __, template, nodes = make_setup(num_nodes=8)
        assert AggregationTree(template, nodes, fanout=2).depth == 3
        assert AggregationTree(template, nodes, fanout=8).depth == 1

    def test_link_bytes_recorded_per_level(self):
        __, template, nodes = make_setup(num_nodes=8)
        tree = AggregationTree(template, nodes, fanout=2)
        tree.sync()
        assert len(tree.link_bytes) == tree.depth + 1
        assert all(level > 0 for level in tree.link_bytes)

    def test_small_contributions_survive_aggregation(self):
        """The paper's DDoS point: per-leaf counts too small to flag
        locally accumulate into a clear signal at the root."""
        from repro.core.conditions import ImplicationConditions

        conditions = ImplicationConditions(max_multiplicity=3, min_support=1)
        # Unbounded fringe: each leaf's true non-implication count is zero,
        # and without fixation noise the local estimates reflect that.
        template = ImplicationCountEstimator(conditions, fringe_size=None, seed=2)
        nodes = [StreamNode(f"edge-{i}", template) for i in range(8)]
        # 200 victims; each edge router sees only one connection per victim
        # per source — far below any local threshold.
        for victim in range(200):
            for source in range(8):
                nodes[source].observe(("victim", victim), ("src", source, victim))
        locally_flagged = sum(
            node.estimator.nonimplication_count() for node in nodes
        )
        root = AggregationTree(template, nodes, fanout=4).sync()
        globally_flagged = root.nonimplication_count()
        assert locally_flagged < globally_flagged
        assert globally_flagged == pytest.approx(200, rel=0.5)
