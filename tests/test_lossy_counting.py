"""Tests for Lossy Counting and Implication Lossy Counting (ILC)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.lossy_counting import ImplicationLossyCounting, LossyCounting
from repro.core.conditions import ImplicationConditions


class TestLossyCounting:
    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            LossyCounting(0.0)
        with pytest.raises(ValueError):
            LossyCounting(1.0)

    def test_undercount_bounded_by_epsilon_t(self):
        """The lossy-counting guarantee: true_count - estimate <= eps * T."""
        epsilon = 0.05
        counter = LossyCounting(epsilon)
        rng = np.random.default_rng(0)
        true_counts: dict[int, int] = {}
        for __ in range(5000):
            item = int(rng.zipf(1.5)) % 100
            true_counts[item] = true_counts.get(item, 0) + 1
            counter.update(item)
        for item, true_count in true_counts.items():
            estimate = counter.frequency(item)
            assert estimate <= true_count
            assert true_count - estimate <= epsilon * counter.tuples_seen

    def test_no_false_negatives_for_frequent_items(self):
        epsilon = 0.01
        counter = LossyCounting(epsilon)
        stream = ["hot"] * 300 + [f"cold-{i}" for i in range(700)]
        counter.update_many(stream)
        assert "hot" in counter.frequent_items(support=0.2)

    def test_memory_stays_sublinear(self):
        counter = LossyCounting(0.01)
        for index in range(50_000):
            counter.update(index)  # all distinct: worst case for memory
        # 1/eps * log(eps*T) = 100 * log(500) ~ 620 entries.
        assert counter.entry_count() < 1500

    def test_bucket_boundary_pruning(self):
        counter = LossyCounting(0.5)  # bucket width 2
        counter.update("x")
        counter.update("y")  # boundary: both have count 1, delta 0 -> kept
        counter.update("z")
        counter.update("w")  # boundary: z,w have delta 1, count 1 -> pruned
        assert counter.frequency("z") == 0


class TestILC:
    def make(self, **kwargs) -> ImplicationLossyCounting:
        conditions = ImplicationConditions(
            max_multiplicity=1, min_support=1, top_c=1, min_top_confidence=1.0
        )
        kwargs.setdefault("epsilon", 0.01)
        return ImplicationLossyCounting(conditions, **kwargs)

    def test_relative_support_must_dominate_epsilon(self):
        with pytest.raises(ValueError):
            self.make(relative_support=0.001)

    def test_identifies_implicated_itemsets(self):
        ilc = self.make(relative_support=0.01)
        for __ in range(100):
            ilc.update("good", "partner")
        assert "good" in ilc.implicated_itemsets()
        assert ilc.implication_count() == 1.0

    def test_dirty_marking_excludes_violators(self):
        ilc = self.make(relative_support=0.01)
        for __ in range(50):
            ilc.update("bad", "b1")
            ilc.update("bad", "b2")  # multiplicity 2 > K=1 at support
        assert "bad" not in ilc.implicated_itemsets()
        assert ilc.nonimplication_count() == 1.0

    def test_dirty_entries_never_pruned(self):
        """Section 5.1.1: dirty itemsets stay in memory forever."""
        ilc = self.make(epsilon=0.1, relative_support=0.1)
        ilc.update("dirty", "b1")
        ilc.update("dirty", "b2")
        entry = ilc._entries["dirty"]
        assert entry.dirty
        # Flood with distinct itemsets to force many prune rounds.
        for index in range(500):
            ilc.update(f"noise-{index}", "b")
        assert "dirty" in ilc._entries
        assert ilc._entries["dirty"].partners is None

    def test_relative_support_loses_small_implications(self):
        """Section 5.1.1: as T grows, sigma_rel * T outgrows small (but
        persistent) implications, so their contribution is lost."""
        ilc = self.make(epsilon=0.01, relative_support=0.01)
        # 'small' appears 60 times in a 10_000-tuple stream (0.6% < 1%).
        for round_index in range(60):
            ilc.update("small", "partner")
            for filler in range(165):
                ilc.update(f"filler-{round_index}-{filler}", "b")
        assert ilc.tuples_seen > 9000
        assert "small" not in ilc.implicated_itemsets()

    def test_memory_grows_with_violators(self):
        """The paper's other complaint: every violator that reaches relative
        support sticks around (dirty) forever."""
        ilc = self.make(epsilon=0.01, relative_support=0.01)
        for index in range(30):
            for __ in range(100):
                ilc.update(f"violator-{index}", "b1")
                ilc.update(f"violator-{index}", "b2")
        assert ilc.nonimplication_count() >= 25
        assert ilc.entry_count() >= 25

    def test_weighted_update(self):
        ilc = self.make(relative_support=0.01)
        ilc.update("a", "b", weight=5)
        assert ilc.tuples_seen == 5

    def test_batch_interface(self):
        ilc = self.make(relative_support=0.01)
        lhs = np.array([1, 1, 2], dtype=np.uint64)
        rhs = np.array([7, 7, 9], dtype=np.uint64)
        ilc.update_batch(lhs, rhs)
        assert ilc.tuples_seen == 3

    def test_supported_distinct_count(self):
        ilc = self.make(relative_support=0.01)
        for __ in range(10):
            ilc.update("a", "b")
        assert ilc.supported_distinct_count() >= 1.0
