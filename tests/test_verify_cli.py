"""Tests for the ``repro-experiments verify`` subcommand."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as repro_main
from repro.verify.cli import main as verify_main


class TestCleanRun:
    def test_exit_zero_and_summary(self, tmp_path, capsys):
        code = verify_main(
            [
                "--seed", "3",
                "--iterations", "8",
                "--stream-size", "192",
                "--bundle-dir", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "8 iterations" in out
        assert "all contracts held" in out
        assert list(tmp_path.iterdir()) == []

    def test_dispatch_through_repro_experiments(self, tmp_path, capsys):
        code = repro_main(
            [
                "verify",
                "--seed", "3",
                "--iterations", "6",
                "--stream-size", "192",
                "--bundle-dir", str(tmp_path),
            ]
        )
        assert code == 0
        assert "all contracts held" in capsys.readouterr().out

    def test_metrics_json_written(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        code = verify_main(
            [
                "--seed", "1",
                "--iterations", "6",
                "--stream-size", "192",
                "--bundle-dir", str(tmp_path),
                "--metrics-json", str(metrics_path),
            ]
        )
        assert code == 0
        payload = json.loads(metrics_path.read_text())
        counters = payload["counters"]
        assert counters["verify.iterations"] >= 6
        assert counters["verify.contracts_checked"] > 0

    def test_profile_subset_flag(self, tmp_path, capsys):
        code = verify_main(
            [
                "--seed", "2",
                "--iterations", "4",
                "--stream-size", "192",
                "--profiles", "uniform", "duplicate_heavy",
                "--bundle-dir", str(tmp_path),
            ]
        )
        assert code == 0

    def test_unknown_profile_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            verify_main(["--profiles", "nope", "--bundle-dir", str(tmp_path)])


class TestPlantedMutation:
    def test_detected_bundled_and_replayable(self, tmp_path, capsys):
        code = verify_main(
            [
                "--seed", "5",
                "--iterations", "12",
                "--stream-size", "256",
                "--mutate", "batch-drops-rows",
                "--bundle-dir", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "planted mutation 'batch-drops-rows'" in out
        assert "[batch-scalar-replay]" in out

        bundles = list(tmp_path.glob("*.json"))
        assert len(bundles) == 1
        payload = json.loads(bundles[0].read_text())
        assert payload["format"] == "repro-verify-bundle"
        assert payload["mutation"] == "batch-drops-rows"
        assert len(payload["lhs"]) <= 20  # minimized counterexample

        # --replay on the recorded bundle reproduces the failure ...
        code = verify_main(["--replay", str(bundles[0])])
        out = capsys.readouterr().out
        assert code == 1
        assert "failure reproduces" in out

        # ... until the mutation is stripped (the "bug" is fixed), at which
        # point the same stream passes and replay exits 0.
        payload["mutation"] = None
        fixed = tmp_path / "fixed.json"
        fixed.write_text(json.dumps(payload))
        code = verify_main(["--replay", str(fixed)])
        out = capsys.readouterr().out
        assert code == 0
        assert "did not reproduce" in out

    def test_unknown_mutation_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            verify_main(["--mutate", "nope", "--bundle-dir", str(tmp_path)])


class TestReplayErrors:
    def test_missing_bundle_exits_two(self, tmp_path, capsys):
        code = verify_main(["--replay", str(tmp_path / "absent.json")])
        assert code == 2
        assert "cannot replay" in capsys.readouterr().err

    def test_malformed_bundle_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "other"}))
        code = verify_main(["--replay", str(bad)])
        assert code == 2
        assert "cannot replay" in capsys.readouterr().err
