"""Tests for the Table 2 query framework, using the Table 1 toy stream.

Each test reproduces a worked example from the paper's Sections 1, 3.1.2 or
Table 2 with the exact backend, then the sketch backend is smoke-tested for
interface parity.
"""

from __future__ import annotations

import pytest

from repro.core.conditions import ImplicationConditions
from repro.core.queries import (
    DistinctCountQuery,
    ImplicationQuery,
    QueryEngine,
    WindowedImplicationQuery,
)
from repro.datasets.network import table1_relation


@pytest.fixture
def engine() -> QueryEngine:
    return QueryEngine(table1_relation().schema, backend="exact")


def run(engine: QueryEngine, query) -> float:
    name = engine.register(query)
    engine.process_rows(table1_relation())
    return engine.result(name)


class TestTable2Examples:
    def test_distinct_count_sources(self, engine):
        """'How many sources have we seen so far' -> 3."""
        assert run(engine, DistinctCountQuery(["source"])) == 3.0

    def test_one_to_one_destinations(self, engine):
        """'How many destinations are contacted by only one source' -> 2
        (D2 <- S1 and D1 <- S2; Section 1)."""
        query = ImplicationQuery.one_to_one(["destination"], ["source"])
        assert run(engine, query) == 2.0

    def test_noisy_one_to_one_destinations(self, engine):
        """'...by one single source 80% of the time' -> 3 (D3 qualifies)."""
        query = ImplicationQuery.one_to_one(
            ["destination"], ["source"], min_top_confidence=0.8
        )
        assert run(engine, query) == 3.0

    def test_services_single_source(self, engine):
        """'How many services are requested from only one source' -> 2
        (WWW <- S1, FTP <- S2)."""
        query = ImplicationQuery.one_to_one(["service"], ["source"])
        assert run(engine, query) == 2.0

    def test_one_to_many_sources(self, engine):
        """'How many sources contact more than one destination' -> 1 (S1)."""
        query = ImplicationQuery.one_to_many(["source"], ["destination"], more_than=1)
        assert run(engine, query) == 1.0

    def test_complement_not_only_web(self, engine):
        """'How many sources do not use only one service' -> 2 (S1, S2)."""
        query = ImplicationQuery(
            ["source"],
            ["service"],
            ImplicationConditions(max_multiplicity=1, min_support=1),
            complement=True,
        )
        assert run(engine, query) == 2.0

    def test_conditional_morning(self, engine):
        """'How many sources contact only one destination during the
        morning' -> 1 (S2; S1 contacts D2 and D3 in the morning)."""
        query = ImplicationQuery.one_to_one(
            ["source"],
            ["destination"],
            where=lambda row: row["time"] == "Morning",
        )
        assert run(engine, query) == 1.0

    def test_compound_source_service(self, engine):
        """'How many sources contact only one target per service' -> 4
        compound itemsets: (S2,FTP), (S2,P2P), (S1,P2P), (S3,P2P)."""
        query = ImplicationQuery.one_to_one(["source", "service"], ["destination"])
        assert run(engine, query) == 4.0


class TestSection312Example:
    def make_query(self, theta: float, min_support: int = 1) -> ImplicationQuery:
        """'Services used by at most two sources theta of the time', with
        maximum multiplicity five and the given minimum support."""
        return ImplicationQuery.one_to_c(
            ["service"],
            ["source"],
            c=2,
            min_top_confidence=theta,
            min_support=min_support,
            max_multiplicity=5,
        )

    def test_theta_80_gives_two(self, engine):
        """WWW and FTP qualify; P2P's top-2 confidence is 75% < 80%."""
        assert run(engine, self.make_query(0.8)) == 2.0

    def test_theta_75_gives_three(self, engine):
        """Lowering theta to 75% makes P2P valid."""
        assert run(engine, self.make_query(0.75)) == 3.0

    def test_min_support_two_drops_ftp(self, engine):
        """With minimum support 2, (FTP <- S2) is not valid."""
        assert run(engine, self.make_query(0.8, min_support=2)) == 1.0


class TestQueryConstruction:
    def test_lhs_rhs_disjoint(self):
        with pytest.raises(ValueError):
            ImplicationQuery(["a"], ["a"], ImplicationConditions())

    def test_lhs_nonempty(self):
        with pytest.raises(ValueError):
            ImplicationQuery([], ["b"], ImplicationConditions())
        with pytest.raises(ValueError):
            DistinctCountQuery([])

    def test_one_to_many_validation(self):
        with pytest.raises(ValueError):
            ImplicationQuery.one_to_many(["a"], ["b"], more_than=0)

    def test_default_names_are_informative(self):
        query = ImplicationQuery.one_to_one(["destination"], ["source"])
        assert "destination" in query.name
        assert "->" in query.name
        complement = ImplicationQuery(
            ["a"], ["b"], ImplicationConditions(), complement=True
        )
        assert "-/->" in complement.name


class TestEngine:
    def test_duplicate_names_rejected(self, engine):
        engine.register(DistinctCountQuery(["source"], name="dup"))
        with pytest.raises(ValueError):
            engine.register(DistinctCountQuery(["service"], name="dup"))

    def test_unknown_result(self, engine):
        with pytest.raises(KeyError):
            engine.result("missing")

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            QueryEngine(table1_relation().schema, backend="magic")

    def test_unknown_query_type(self, engine):
        with pytest.raises(TypeError):
            engine.register(object())

    def test_results_returns_all(self, engine):
        engine.register(DistinctCountQuery(["source"], name="sources"))
        engine.register(DistinctCountQuery(["destination"], name="destinations"))
        engine.process_rows(table1_relation())
        results = engine.results()
        assert results == {"sources": 3.0, "destinations": 3.0}

    def test_process_dicts(self, engine):
        engine.register(DistinctCountQuery(["source"], name="sources"))
        engine.process_dicts(table1_relation().dicts())
        assert engine.result("sources") == 3.0

    def test_counter_accessor(self, engine):
        name = engine.register(
            ImplicationQuery.one_to_one(["destination"], ["source"])
        )
        engine.process_rows(table1_relation())
        counter = engine.counter(name)
        assert counter.implication_count() == 2.0


class TestSketchBackend:
    def test_runs_all_query_kinds(self):
        engine = QueryEngine(
            table1_relation().schema, backend="sketch", num_bitmaps=16, seed=1
        )
        engine.register(DistinctCountQuery(["source"], name="distinct"))
        engine.register(
            ImplicationQuery.one_to_one(
                ["destination"], ["source"], name="one-to-one"
            )
        )
        engine.register(
            WindowedImplicationQuery(
                ImplicationQuery.one_to_one(["service"], ["source"]),
                window=100,
                name="windowed",
            )
        )
        for _ in range(20):
            engine.process_rows(table1_relation())
        results = engine.results()
        assert set(results) == {"distinct", "one-to-one", "windowed"}
        assert all(value >= 0 for value in results.values())

    def test_windowed_requires_sketch(self, engine):
        with pytest.raises(ValueError):
            engine.register(
                WindowedImplicationQuery(
                    ImplicationQuery.one_to_one(["service"], ["source"]),
                    window=10,
                )
            )

    def test_sketch_tracks_exact_on_larger_stream(self):
        """On a bigger synthetic relation the sketch should land near the
        exact answer (single trial; generous bound)."""
        from repro.stream.schema import Relation, Schema

        schema = Schema(["x", "y"])
        rows = [(f"x{i}", f"y{i}") for i in range(2000)]
        relation = Relation(schema, rows)
        exact = QueryEngine(schema, backend="exact")
        sketch = QueryEngine(schema, backend="sketch", seed=3)
        for engine_ in (exact, sketch):
            engine_.register(ImplicationQuery.one_to_one(["x"], ["y"], name="q"))
            engine_.process_rows(relation)
        assert exact.result("q") == 2000.0
        assert abs(sketch.result("q") - 2000.0) / 2000.0 < 0.35
