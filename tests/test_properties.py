"""Hypothesis property tests on the core invariants.

These exercise the state machines with adversarial random streams, checking
the invariants the paper's correctness argument rests on:

* statuses move monotonically (pending -> satisfied <-> ... -> violated,
  with violated absorbing);
* the non-implication count is monotone non-decreasing over any stream;
* exact counting is order-independent;
* the batch and scalar estimator paths agree exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import ExactImplicationCounter
from repro.core.conditions import ImplicationConditions, ItemsetStatus
from repro.core.estimator import ImplicationCountEstimator
from repro.core.serialize import estimator_state_digest
from repro.core.tracker import ItemsetState
from repro.sketch.fm import FMBitmap, PCSA
from repro.sketch.kmv import KMinimumValues
from repro.sketch.linear_counting import LinearCounter
from repro.sketch.loglog import HyperLogLog, LogLog

conditions_strategy = st.builds(
    lambda k, tau, c, theta: ImplicationConditions(
        max_multiplicity=max(k, c),
        min_support=tau,
        top_c=c,
        min_top_confidence=theta,
    ),
    k=st.integers(min_value=1, max_value=5),
    tau=st.integers(min_value=1, max_value=6),
    c=st.integers(min_value=1, max_value=3),
    theta=st.floats(min_value=0.0, max_value=1.0),
)

# Merge and weighted-update *bit-for-bit* identities hold exactly when the
# sticky confidence condition is off (theta = 0): confidence latching is
# interleaving-dependent by design (see ItemsetState.merge), while support
# sums, partner-counter sums and the multiplicity flag are monotone
# functions of the union multiset — order-independent.
theta_zero_conditions_strategy = st.builds(
    lambda k, tau: ImplicationConditions(max_multiplicity=k, min_support=tau),
    k=st.one_of(st.none(), st.integers(min_value=1, max_value=5)),
    tau=st.integers(min_value=1, max_value=6),
)

stream_strategy = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 7)), min_size=1, max_size=120
)


class TestStateMachineInvariants:
    @given(conditions=conditions_strategy, partners=st.lists(st.integers(0, 7), min_size=1, max_size=60))
    def test_violated_is_absorbing(self, conditions, partners):
        state = ItemsetState()
        seen_violated = False
        for partner in partners:
            status = state.observe(partner, conditions)
            if seen_violated:
                assert status is ItemsetStatus.VIOLATED
            seen_violated = seen_violated or status is ItemsetStatus.VIOLATED

    @given(conditions=conditions_strategy, partners=st.lists(st.integers(0, 7), min_size=1, max_size=60))
    def test_support_equals_observations(self, conditions, partners):
        state = ItemsetState()
        for partner in partners:
            state.observe(partner, conditions)
        assert state.support == len(partners)

    @given(conditions=conditions_strategy, partners=st.lists(st.integers(0, 7), min_size=1, max_size=60))
    def test_top_confidence_bounded(self, conditions, partners):
        state = ItemsetState()
        for partner in partners:
            state.observe(partner, conditions)
            assert 0.0 <= state.top_confidence(conditions) <= 1.0

    @given(conditions=conditions_strategy, partners=st.lists(st.integers(0, 7), min_size=1, max_size=60))
    def test_partner_storage_bounded_by_k(self, conditions, partners):
        state = ItemsetState()
        for partner in partners:
            state.observe(partner, conditions)
            if state.partners is not None:
                assert len(state.partners) <= conditions.max_multiplicity


class TestExactCounterInvariants:
    @given(conditions=conditions_strategy, stream=stream_strategy)
    def test_nonimplication_count_monotone(self, conditions, stream):
        counter = ExactImplicationCounter(conditions)
        previous = 0.0
        for itemset, partner in stream:
            counter.update(itemset, partner)
            current = counter.nonimplication_count()
            assert current >= previous
            previous = current

    @given(conditions=conditions_strategy, stream=stream_strategy)
    def test_counts_partition_supported(self, conditions, stream):
        counter = ExactImplicationCounter(conditions)
        for itemset, partner in stream:
            counter.update(itemset, partner)
        assert (
            counter.implication_count() + counter.nonimplication_count()
            == counter.supported_distinct_count()
        )
        assert counter.supported_distinct_count() <= counter.distinct_count()


class TestEstimatorInvariants:
    @settings(deadline=None, max_examples=25)
    @given(conditions=conditions_strategy, stream=stream_strategy)
    def test_batch_equals_scalar(self, conditions, stream):
        lhs = np.array([a for a, _ in stream], dtype=np.uint64)
        rhs = np.array([b for _, b in stream], dtype=np.uint64)
        scalar = ImplicationCountEstimator(conditions, num_bitmaps=8, seed=3)
        batch = ImplicationCountEstimator(conditions, num_bitmaps=8, seed=3)
        for a, b in stream:
            scalar.update(a, b)
        batch.update_batch(lhs, rhs)
        assert scalar.implication_count() == batch.implication_count()
        assert scalar.nonimplication_count() == batch.nonimplication_count()
        assert scalar.supported_distinct_count() == batch.supported_distinct_count()

    @settings(deadline=None, max_examples=25)
    @given(conditions=conditions_strategy, stream=stream_strategy)
    def test_estimates_nonnegative_and_consistent(self, conditions, stream):
        estimator = ImplicationCountEstimator(conditions, num_bitmaps=8, seed=5)
        for itemset, partner in stream:
            estimator.update(itemset, partner)
        supported = estimator.supported_distinct_count()
        nonimpl = estimator.nonimplication_count()
        assert supported >= 0.0
        assert nonimpl >= 0.0
        assert supported >= nonimpl
        assert estimator.implication_count() >= 0.0

    @settings(deadline=None, max_examples=25)
    @given(
        conditions=theta_zero_conditions_strategy,
        stream=st.lists(
            st.tuples(
                st.integers(0, 15), st.integers(0, 7), st.integers(1, 4)
            ),
            min_size=1,
            max_size=60,
        ),
    )
    def test_update_many_weights_equal_repeated_scalar(self, conditions, stream):
        """update_many with weight k is bit-for-bit k adjacent scalar updates."""
        pairs = [(a, b) for a, b, _ in stream]
        weights = [w for _, _, w in stream]
        weighted = ImplicationCountEstimator(conditions, num_bitmaps=4, seed=13)
        weighted.update_many(pairs, weights)
        repeated = ImplicationCountEstimator(conditions, num_bitmaps=4, seed=13)
        for (a, b), w in zip(pairs, weights):
            for _ in range(w):
                repeated.update(a, b)
        assert estimator_state_digest(weighted) == estimator_state_digest(repeated)

        exact_weighted = ExactImplicationCounter(conditions)
        exact_weighted.update_many(pairs, weights)
        exact_repeated = ExactImplicationCounter(conditions)
        for (a, b), w in zip(pairs, weights):
            for _ in range(w):
                exact_repeated.update(a, b)
        assert exact_weighted.implication_count() == exact_repeated.implication_count()
        assert (
            exact_weighted.nonimplication_count()
            == exact_repeated.nonimplication_count()
        )
        assert (
            exact_weighted.supported_distinct_count()
            == exact_repeated.supported_distinct_count()
        )

    @settings(deadline=None, max_examples=25)
    @given(stream=stream_strategy)
    def test_fringe_invariants_hold_throughout(self, stream):
        conditions = ImplicationConditions(
            max_multiplicity=1, min_support=1, top_c=1, min_top_confidence=1.0
        )
        estimator = ImplicationCountEstimator(
            conditions, num_bitmaps=8, fringe_size=3, seed=7
        )
        for itemset, partner in stream:
            estimator.update(itemset, partner)
            for bitmap in estimator.bitmaps:
                # The first fringe cell is always undecided (value 0).
                assert bitmap.fringe_start not in bitmap._value_one
                # Decided cells only exist inside the fringe window.
                for position in bitmap._value_one:
                    assert bitmap.fringe_start <= position <= bitmap.fringe_end
                # Storage never leaks outside the fringe window.
                for position in bitmap._cells:
                    assert bitmap.fringe_start <= position <= bitmap.fringe_end
                # R_Sbar from the scan equals the maintained fringe_start.
                assert (
                    bitmap.leftmost_zero_nonimplication() == bitmap.fringe_start
                )


def _sibling_with(base: ImplicationCountEstimator, stream):
    """A sibling of ``base`` (shared hash/geometry) fed one sub-stream."""
    estimator = base.spawn_sibling()
    for itemset, partner in stream:
        estimator.update(itemset, partner)
    return estimator


class TestNIPSMergeAlgebra:
    """Merge of NIPS estimators is commutative and associative (theta = 0).

    These are the algebraic laws the distributed layer (Coordinator star,
    AggregationTree hierarchy) silently relies on: snapshots arrive in
    arbitrary order and are merged in arbitrary groupings, so the union
    estimator must not depend on either.  Compared bit-for-bit via the
    canonical state digest, not just on readouts.
    """

    @settings(deadline=None, max_examples=25)
    @given(
        conditions=theta_zero_conditions_strategy,
        left=stream_strategy,
        right=stream_strategy,
    )
    def test_merge_commutative(self, conditions, left, right):
        base = ImplicationCountEstimator(conditions, num_bitmaps=4, seed=11)
        a = _sibling_with(base, left)
        b = _sibling_with(base, right)
        ab = base.spawn_sibling().merge(a).merge(b)
        ba = base.spawn_sibling().merge(b).merge(a)
        assert estimator_state_digest(ab) == estimator_state_digest(ba)

    @settings(deadline=None, max_examples=25)
    @given(
        conditions=theta_zero_conditions_strategy,
        first=stream_strategy,
        second=stream_strategy,
        third=stream_strategy,
    )
    def test_merge_associative(self, conditions, first, second, third):
        base = ImplicationCountEstimator(conditions, num_bitmaps=4, seed=11)
        a = _sibling_with(base, first)
        b = _sibling_with(base, second)
        c = _sibling_with(base, third)
        left = base.spawn_sibling().merge(
            base.spawn_sibling().merge(a).merge(b)
        ).merge(c)
        right = base.spawn_sibling().merge(a).merge(
            base.spawn_sibling().merge(b).merge(c)
        )
        assert estimator_state_digest(left) == estimator_state_digest(right)


def _sketch_state(sketch):
    """Canonical internal state of any of the F0 sketches."""
    if isinstance(sketch, PCSA):
        return tuple(sketch._bitmaps)
    if isinstance(sketch, FMBitmap):
        return sketch._bits
    if isinstance(sketch, (LogLog, HyperLogLog)):
        return tuple(sketch.registers.tolist())
    if isinstance(sketch, LinearCounter):
        return tuple(sketch._bits.tolist())
    if isinstance(sketch, KMinimumValues):
        return tuple(sorted(sketch._members))
    raise TypeError(f"no state accessor for {type(sketch)!r}")


_SKETCH_FACTORIES = [
    pytest.param(lambda: FMBitmap(seed=3), id="fm"),
    pytest.param(lambda: PCSA(num_bitmaps=8, seed=3), id="pcsa"),
    pytest.param(lambda: KMinimumValues(k=16, seed=3), id="kmv"),
    pytest.param(lambda: LogLog(num_registers=16, seed=3), id="loglog"),
    pytest.param(lambda: HyperLogLog(num_registers=16, seed=3), id="hll"),
    pytest.param(lambda: LinearCounter(num_bits=256, seed=3), id="linear"),
]

_items_strategy = st.lists(st.integers(0, 10_000), max_size=80)


def _fill(sketch, items):
    """Feed items through whichever per-item API the sketch exposes."""
    for item in items:
        sketch.add(item)
    return sketch


class TestSketchMergeAlgebra:
    """The F0 sketches' merges are unions: commutative and associative."""

    @pytest.mark.parametrize("factory", _SKETCH_FACTORIES)
    @settings(deadline=None, max_examples=20)
    @given(left=_items_strategy, right=_items_strategy)
    def test_merge_commutative(self, factory, left, right):
        a1 = _fill(factory(), left)
        b1 = _fill(factory(), right)
        a1.merge(b1)
        a2 = _fill(factory(), left)
        b2 = _fill(factory(), right)
        b2.merge(a2)
        assert _sketch_state(a1) == _sketch_state(b2)
        assert a1.estimate() == b2.estimate()

    @pytest.mark.parametrize("factory", _SKETCH_FACTORIES)
    @settings(deadline=None, max_examples=20)
    @given(first=_items_strategy, second=_items_strategy, third=_items_strategy)
    def test_merge_associative(self, factory, first, second, third):
        def fresh(items):
            return _fill(factory(), items)

        left = fresh(first)
        left.merge(fresh(second))
        left.merge(fresh(third))
        right_tail = fresh(second)
        right_tail.merge(fresh(third))
        right = fresh(first)
        right.merge(right_tail)
        assert _sketch_state(left) == _sketch_state(right)
        assert left.estimate() == right.estimate()
