"""Hypothesis property tests on the core invariants.

These exercise the state machines with adversarial random streams, checking
the invariants the paper's correctness argument rests on:

* statuses move monotonically (pending -> satisfied <-> ... -> violated,
  with violated absorbing);
* the non-implication count is monotone non-decreasing over any stream;
* exact counting is order-independent;
* the batch and scalar estimator paths agree exactly.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import ExactImplicationCounter
from repro.core.conditions import ImplicationConditions, ItemsetStatus
from repro.core.estimator import ImplicationCountEstimator
from repro.core.tracker import ItemsetState

conditions_strategy = st.builds(
    lambda k, tau, c, theta: ImplicationConditions(
        max_multiplicity=max(k, c),
        min_support=tau,
        top_c=c,
        min_top_confidence=theta,
    ),
    k=st.integers(min_value=1, max_value=5),
    tau=st.integers(min_value=1, max_value=6),
    c=st.integers(min_value=1, max_value=3),
    theta=st.floats(min_value=0.0, max_value=1.0),
)

stream_strategy = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 7)), min_size=1, max_size=120
)


class TestStateMachineInvariants:
    @given(conditions=conditions_strategy, partners=st.lists(st.integers(0, 7), min_size=1, max_size=60))
    def test_violated_is_absorbing(self, conditions, partners):
        state = ItemsetState()
        seen_violated = False
        for partner in partners:
            status = state.observe(partner, conditions)
            if seen_violated:
                assert status is ItemsetStatus.VIOLATED
            seen_violated = seen_violated or status is ItemsetStatus.VIOLATED

    @given(conditions=conditions_strategy, partners=st.lists(st.integers(0, 7), min_size=1, max_size=60))
    def test_support_equals_observations(self, conditions, partners):
        state = ItemsetState()
        for partner in partners:
            state.observe(partner, conditions)
        assert state.support == len(partners)

    @given(conditions=conditions_strategy, partners=st.lists(st.integers(0, 7), min_size=1, max_size=60))
    def test_top_confidence_bounded(self, conditions, partners):
        state = ItemsetState()
        for partner in partners:
            state.observe(partner, conditions)
            assert 0.0 <= state.top_confidence(conditions) <= 1.0

    @given(conditions=conditions_strategy, partners=st.lists(st.integers(0, 7), min_size=1, max_size=60))
    def test_partner_storage_bounded_by_k(self, conditions, partners):
        state = ItemsetState()
        for partner in partners:
            state.observe(partner, conditions)
            if state.partners is not None:
                assert len(state.partners) <= conditions.max_multiplicity


class TestExactCounterInvariants:
    @given(conditions=conditions_strategy, stream=stream_strategy)
    def test_nonimplication_count_monotone(self, conditions, stream):
        counter = ExactImplicationCounter(conditions)
        previous = 0.0
        for itemset, partner in stream:
            counter.update(itemset, partner)
            current = counter.nonimplication_count()
            assert current >= previous
            previous = current

    @given(conditions=conditions_strategy, stream=stream_strategy)
    def test_counts_partition_supported(self, conditions, stream):
        counter = ExactImplicationCounter(conditions)
        for itemset, partner in stream:
            counter.update(itemset, partner)
        assert (
            counter.implication_count() + counter.nonimplication_count()
            == counter.supported_distinct_count()
        )
        assert counter.supported_distinct_count() <= counter.distinct_count()


class TestEstimatorInvariants:
    @settings(deadline=None, max_examples=25)
    @given(conditions=conditions_strategy, stream=stream_strategy)
    def test_batch_equals_scalar(self, conditions, stream):
        lhs = np.array([a for a, _ in stream], dtype=np.uint64)
        rhs = np.array([b for _, b in stream], dtype=np.uint64)
        scalar = ImplicationCountEstimator(conditions, num_bitmaps=8, seed=3)
        batch = ImplicationCountEstimator(conditions, num_bitmaps=8, seed=3)
        for a, b in stream:
            scalar.update(a, b)
        batch.update_batch(lhs, rhs)
        assert scalar.implication_count() == batch.implication_count()
        assert scalar.nonimplication_count() == batch.nonimplication_count()
        assert scalar.supported_distinct_count() == batch.supported_distinct_count()

    @settings(deadline=None, max_examples=25)
    @given(conditions=conditions_strategy, stream=stream_strategy)
    def test_estimates_nonnegative_and_consistent(self, conditions, stream):
        estimator = ImplicationCountEstimator(conditions, num_bitmaps=8, seed=5)
        for itemset, partner in stream:
            estimator.update(itemset, partner)
        supported = estimator.supported_distinct_count()
        nonimpl = estimator.nonimplication_count()
        assert supported >= 0.0
        assert nonimpl >= 0.0
        assert supported >= nonimpl
        assert estimator.implication_count() >= 0.0

    @settings(deadline=None, max_examples=25)
    @given(stream=stream_strategy)
    def test_fringe_invariants_hold_throughout(self, stream):
        conditions = ImplicationConditions(
            max_multiplicity=1, min_support=1, top_c=1, min_top_confidence=1.0
        )
        estimator = ImplicationCountEstimator(
            conditions, num_bitmaps=8, fringe_size=3, seed=7
        )
        for itemset, partner in stream:
            estimator.update(itemset, partner)
            for bitmap in estimator.bitmaps:
                # The first fringe cell is always undecided (value 0).
                assert bitmap.fringe_start not in bitmap._value_one
                # Decided cells only exist inside the fringe window.
                for position in bitmap._value_one:
                    assert bitmap.fringe_start <= position <= bitmap.fringe_end
                # Storage never leaks outside the fringe window.
                for position in bitmap._cells:
                    assert bitmap.fringe_start <= position <= bitmap.fringe_end
                # R_Sbar from the scan equals the maintained fringe_start.
                assert (
                    bitmap.leftmost_zero_nonimplication() == bitmap.fringe_start
                )
