"""Tests for the Count-Min sketch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sketch.countmin import CountMinSketch


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CountMinSketch(epsilon=0.0)
        with pytest.raises(ValueError):
            CountMinSketch(delta=1.0)

    def test_dimensions(self):
        sketch = CountMinSketch(epsilon=0.01, delta=0.01)
        assert sketch.width == 272  # ceil(e / 0.01)
        assert sketch.depth == 5  # ceil(ln 100)
        assert sketch.counter_count == 272 * 5


class TestPointQueries:
    def test_never_underestimates(self):
        sketch = CountMinSketch(epsilon=0.05, delta=0.05, seed=1)
        rng = np.random.default_rng(0)
        truth: dict[int, int] = {}
        for __ in range(5000):
            item = int(rng.zipf(1.3)) % 200
            truth[item] = truth.get(item, 0) + 1
            sketch.add(item)
        for item, true_count in truth.items():
            assert sketch.estimate(item) >= true_count

    def test_overestimate_bounded(self):
        epsilon = 0.01
        sketch = CountMinSketch(epsilon=epsilon, delta=0.01, seed=2)
        for item in range(10_000):
            sketch.add(item % 500)
        overshoots = [
            sketch.estimate(item) - 20 for item in range(500)
        ]  # each item appears exactly 20 times
        # The guarantee is per-query with probability 1 - delta; check the
        # 95th percentile rather than the max.
        overshoots.sort()
        assert overshoots[int(0.95 * len(overshoots))] <= epsilon * sketch.total

    def test_unseen_item_can_be_zero(self):
        sketch = CountMinSketch(epsilon=0.01, delta=0.01, seed=3)
        sketch.add("present")
        assert sketch.estimate("present") >= 1

    def test_weighted_add(self):
        sketch = CountMinSketch(seed=4)
        sketch.add("x", count=7)
        assert sketch.estimate("x") >= 7
        assert sketch.total == 7
        with pytest.raises(ValueError):
            sketch.add("x", count=-1)


class TestConservativeUpdate:
    def test_tightens_estimates(self):
        plain = CountMinSketch(epsilon=0.1, delta=0.1, seed=5)
        conservative = CountMinSketch(
            epsilon=0.1, delta=0.1, conservative=True, seed=5
        )
        rng = np.random.default_rng(1)
        stream = [int(rng.zipf(1.2)) % 100 for __ in range(20_000)]
        plain.update_many(stream)
        conservative.update_many(stream)
        plain_total_overshoot = sum(plain.estimate(i) for i in range(100))
        conservative_total_overshoot = sum(
            conservative.estimate(i) for i in range(100)
        )
        assert conservative_total_overshoot <= plain_total_overshoot

    def test_still_never_underestimates(self):
        sketch = CountMinSketch(epsilon=0.1, delta=0.1, conservative=True, seed=6)
        for __ in range(50):
            sketch.add("hot")
        assert sketch.estimate("hot") >= 50


class TestMerge:
    def test_merge_is_addition(self):
        left = CountMinSketch(epsilon=0.05, delta=0.1, seed=7)
        right = CountMinSketch(epsilon=0.05, delta=0.1, seed=7)
        union = CountMinSketch(epsilon=0.05, delta=0.1, seed=7)
        for item in range(1000):
            (left if item % 2 else right).add(item % 37)
            union.add(item % 37)
        left.merge(right)
        assert np.array_equal(left._table, union._table)
        assert left.total == union.total

    def test_incompatible_rejected(self):
        with pytest.raises(ValueError):
            CountMinSketch(epsilon=0.05, seed=1).merge(
                CountMinSketch(epsilon=0.01, seed=1)
            )
        with pytest.raises(ValueError):
            CountMinSketch(seed=1).merge(CountMinSketch(seed=2))

    def test_conservative_not_mergeable(self):
        with pytest.raises(ValueError):
            CountMinSketch(conservative=True, seed=1).merge(
                CountMinSketch(conservative=True, seed=1)
            )
