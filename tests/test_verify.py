"""Tests for the differential verification subsystem (repro.verify)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.conditions import ImplicationConditions
from repro.core.estimator import ImplicationCountEstimator
from repro.verify import (
    CONTRACTS,
    DifferentialHarness,
    StreamCase,
    check_case,
    contract_by_name,
    generate_stream,
    load_bundle,
    mutation_by_name,
    mutation_names,
    profile_names,
    replay_bundle,
    shrink_stream,
    write_bundle,
)
from repro.verify.bundle import case_from_bundle


class TestStreamProfiles:
    def test_profiles_are_deterministic(self):
        for profile in profile_names():
            first = generate_stream(profile, seed=42, size=128)
            second = generate_stream(profile, seed=42, size=128)
            np.testing.assert_array_equal(first[0], second[0])
            np.testing.assert_array_equal(first[1], second[1])

    def test_profiles_differ_across_seeds(self):
        lhs_a, _ = generate_stream("uniform", seed=1, size=128)
        lhs_b, _ = generate_stream("uniform", seed=2, size=128)
        assert not np.array_equal(lhs_a, lhs_b)

    def test_profiles_produce_requested_size_and_dtype(self):
        for profile in profile_names():
            lhs, rhs = generate_stream(profile, seed=7, size=97)
            assert len(lhs) == len(rhs) == 97
            assert lhs.dtype == np.uint64
            assert rhs.dtype == np.uint64

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown stream profile"):
            generate_stream("nope", seed=0, size=16)

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError, match="size"):
            generate_stream("uniform", seed=0, size=0)


class TestContractRegistry:
    def test_registry_names_unique(self):
        names = [contract.name for contract in CONTRACTS]
        assert len(names) == len(set(names))

    def test_contract_by_name_roundtrip(self):
        for contract in CONTRACTS:
            assert contract_by_name(contract.name) is contract
        with pytest.raises(ValueError, match="unknown contract"):
            contract_by_name("no-such-contract")

    def test_theta_scoped_contracts_skip_confidence_conditions(self):
        lhs, rhs = generate_stream("uniform", seed=0, size=32)
        confident = StreamCase(
            lhs=lhs,
            rhs=rhs,
            conditions=ImplicationConditions(
                min_support=1, top_c=1, min_top_confidence=0.8
            ),
            seed=0,
        )
        for name in ("batch-pair-aggregation", "shard-merge", "update-many-weights"):
            assert not contract_by_name(name).applies(confident)
        relaxed = StreamCase(
            lhs=lhs,
            rhs=rhs,
            conditions=ImplicationConditions(min_support=2),
            seed=0,
        )
        for contract in CONTRACTS:
            assert contract.applies(relaxed)

    def test_clean_case_passes_every_contract(self):
        lhs, rhs = generate_stream("duplicate_heavy", seed=11, size=192)
        case = StreamCase(
            lhs=lhs,
            rhs=rhs,
            conditions=ImplicationConditions(max_multiplicity=2, min_support=3),
            seed=11,
            profile="duplicate_heavy",
        )
        assert check_case(case) == []


class TestShrink:
    def test_shrinks_to_single_offender(self):
        rng = np.random.default_rng(5)
        lhs = rng.integers(0, 50, size=200).astype(np.uint64)
        lhs[137] = 777  # the single tuple the predicate needs
        rhs = rng.integers(0, 5, size=200).astype(np.uint64)

        result = shrink_stream(lhs, rhs, lambda l, r: 777 in l.tolist())
        assert result.size == 1
        assert result.lhs[0] == 777

    def test_preserves_relative_order(self):
        lhs = np.array([9, 3, 9, 5, 9], dtype=np.uint64)
        rhs = np.zeros(5, dtype=np.uint64)

        def needs_3_before_5(l, r) -> bool:
            values = l.tolist()
            return (
                3 in values and 5 in values and values.index(3) < values.index(5)
            )

        result = shrink_stream(lhs, rhs, needs_3_before_5)
        assert result.lhs.tolist() == [3, 5]

    def test_respects_test_budget(self):
        lhs = np.arange(64, dtype=np.uint64)
        rhs = np.zeros(64, dtype=np.uint64)
        result = shrink_stream(lhs, rhs, lambda l, r: len(l) >= 2, max_tests=10)
        assert result.tests_run <= 11  # budget, +1 for the final in-flight test
        assert result.size >= 2  # still a failing stream


class TestBundles:
    def _sample_case(self) -> StreamCase:
        lhs, rhs = generate_stream("uniform", seed=3, size=16)
        return StreamCase(
            lhs=lhs,
            rhs=rhs,
            conditions=ImplicationConditions(min_support=2),
            seed=3,
            profile="uniform",
        )

    def test_write_load_roundtrip(self, tmp_path):
        case = self._sample_case()
        path = write_bundle(
            tmp_path / "b.json",
            case=case,
            contract_name="serialize-roundtrip",
            violation="synthetic",
            iteration=4,
            original_size=512,
            shrink_tests=99,
        )
        payload = load_bundle(path)
        assert payload["contract"] == "serialize-roundtrip"
        assert payload["iteration"] == 4
        rebuilt = case_from_bundle(payload)
        np.testing.assert_array_equal(rebuilt.lhs, case.lhs)
        np.testing.assert_array_equal(rebuilt.rhs, case.rhs)
        assert rebuilt.conditions == case.conditions

    def test_load_rejects_malformed(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "other"}))
        with pytest.raises(ValueError, match="not a repro-verify-bundle"):
            load_bundle(bad)
        bad.write_text(
            json.dumps({"format": "repro-verify-bundle", "version": 99})
        )
        with pytest.raises(ValueError, match="version"):
            load_bundle(bad)
        bad.write_text(
            json.dumps(
                {
                    "format": "repro-verify-bundle",
                    "version": 1,
                    "contract": "shard-merge",
                    "conditions": {},
                    "estimator": {},
                    "lhs": [1, 2],
                    "rhs": [1],
                }
            )
        )
        with pytest.raises(ValueError, match="different lengths"):
            load_bundle(bad)

    def test_replay_clean_bundle_returns_none(self, tmp_path):
        # A bundle over a healthy stream/contract: replay reports "fixed".
        path = write_bundle(
            tmp_path / "clean.json",
            case=self._sample_case(),
            contract_name="serialize-roundtrip",
            violation="was never real",
        )
        assert replay_bundle(path) is None


class TestMutations:
    def test_mutation_names_unique_and_resolvable(self):
        names = mutation_names()
        assert len(names) == len(set(names))
        for name in names:
            assert mutation_by_name(name).name == name
        with pytest.raises(ValueError, match="unknown mutation"):
            mutation_by_name("no-such-mutation")

    @pytest.mark.parametrize("name", mutation_names())
    def test_mutant_detected_shrunk_and_replayable(self, name, tmp_path):
        """The full acceptance loop: detect, shrink to <= 20 tuples, bundle,
        replay reproduces, and the fix (stock estimator) makes it pass."""
        mutation = mutation_by_name(name)
        harness = DifferentialHarness(
            base_seed=5,
            iterations=12,
            stream_size=256,
            factory=mutation.factory,
            bundle_dir=tmp_path,
            mutation_name=name,
        )
        report = harness.run()
        assert not report.ok
        violation = report.violations[0]
        assert violation.contract == mutation.expected_contract
        assert violation.minimized_size <= 20
        assert violation.bundle_path is not None

        # The recorded bundle replays the failure deterministically ...
        message = replay_bundle(violation.bundle_path)
        assert message is not None

        # ... and the same minimized stream passes once the bug is "fixed"
        # (mutation stripped, stock estimator back in).
        payload = load_bundle(violation.bundle_path)
        payload["mutation"] = None
        fixed = case_from_bundle(payload)
        assert fixed.factory is ImplicationCountEstimator
        assert contract_by_name(violation.contract).check(fixed) is None


class TestHarness:
    def test_clean_run_small_budget(self, tmp_path):
        report = DifferentialHarness(
            base_seed=1, iterations=8, stream_size=192, bundle_dir=tmp_path
        ).run()
        assert report.ok
        assert report.iterations_run == 8
        assert report.checks_run > 0
        assert list(tmp_path.iterdir()) == []

    def test_iterations_are_deterministic(self):
        a = DifferentialHarness(base_seed=9, iterations=3, stream_size=64)
        b = DifferentialHarness(base_seed=9, iterations=3, stream_size=64)
        for iteration in range(3):
            case_a, name_a = a.case_for_iteration(iteration)
            case_b, name_b = b.case_for_iteration(iteration)
            assert name_a == name_b
            assert case_a.seed == case_b.seed
            np.testing.assert_array_equal(case_a.lhs, case_b.lhs)
            np.testing.assert_array_equal(case_a.rhs, case_b.rhs)

    def test_cycles_profiles_and_conditions(self):
        harness = DifferentialHarness(base_seed=0, iterations=40, stream_size=64)
        profiles = {
            harness.case_for_iteration(i)[0].profile for i in range(40)
        }
        condition_names = {
            harness.case_for_iteration(i)[1] for i in range(40)
        }
        assert profiles == set(profile_names())
        assert len(condition_names) == 5

    def test_rejects_bad_budgets(self):
        with pytest.raises(ValueError, match="iterations"):
            DifferentialHarness(iterations=0)
        with pytest.raises(ValueError, match="stream_size"):
            DifferentialHarness(stream_size=2)


@pytest.mark.fuzz
class TestFuzzTier:
    """The long differential tier — nightly CI; excluded from PR runs."""

    def test_fifty_iterations_all_profiles_clean(self, tmp_path):
        report = DifferentialHarness(
            base_seed=0, iterations=50, stream_size=512, bundle_dir=tmp_path
        ).run()
        assert report.ok, "\n".join(v.describe() for v in report.violations)

    def test_second_seed_band_clean(self, tmp_path):
        report = DifferentialHarness(
            base_seed=20_000, iterations=30, stream_size=768, bundle_dir=tmp_path
        ).run()
        assert report.ok, "\n".join(v.describe() for v in report.violations)
