"""Durable checkpoint/recovery subsystem (repro.recovery)."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core.conditions import ImplicationConditions
from repro.core.estimator import ImplicationCountEstimator
from repro.core.serialize import (
    CHECKPOINT_VERSION,
    SketchFormatError,
    checkpoint_manifest_from_bytes,
    checkpoint_manifest_to_bytes,
    estimator_state_digest,
)
from repro.distributed.coordinator import Coordinator
from repro.engine.sharded import ShardedIngestor
from repro.observability import metrics as obs
from repro.recovery import CheckpointManager, RunConfig, run_checkpointed
from repro.recovery.cli import main as recovery_cli_main
from repro.verify.streams import generate_stream


def make_estimator(seed: int = 0, tuples: int = 200) -> ImplicationCountEstimator:
    estimator = ImplicationCountEstimator(
        ImplicationConditions(min_support=2), num_bitmaps=8, seed=seed
    )
    lhs, rhs = generate_stream("skewed", seed=seed, size=tuples)
    estimator.update_batch(lhs, rhs, aggregate=False, grouped=False)
    return estimator


def corrupt_file(path: str, offset_fraction: float = 0.5) -> None:
    with open(path, "r+b") as handle:
        blob = bytearray(handle.read())
        blob[int(len(blob) * offset_fraction) % len(blob)] ^= 0xFF
        handle.seek(0)
        handle.write(blob)


class TestCheckpointManager:
    def test_save_load_round_trip(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpt")
        estimator = make_estimator()
        manifest = manager.save(estimator, cursor=200, epoch={"chunk_index": 3})
        assert manifest["generation"] == 0
        assert manifest["cursor"] == 200
        assert manifest["state_digest"] == estimator_state_digest(estimator)
        restored = manager.load_latest()
        assert restored is not None
        assert restored.generation == 0
        assert restored.cursor == 200
        assert restored.manifest["epoch"] == {"chunk_index": 3}
        assert estimator_state_digest(restored.estimator) == estimator_state_digest(
            estimator
        )
        assert restored.skipped == []

    def test_generations_increment_and_prune_to_keep(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpt", keep=2)
        estimator = make_estimator()
        for cursor in (10, 20, 30, 40):
            manager.save(estimator, cursor=cursor)
        assert manager.generations() == [2, 3]
        # Pruned generations' files are really gone.
        names = set(os.listdir(manager.directory))
        assert "ckpt-000000.payload" not in names
        assert "ckpt-000000.manifest.json" not in names
        restored = manager.load_latest()
        assert restored.generation == 3
        assert restored.cursor == 40

    def test_keep_below_two_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            CheckpointManager(tmp_path / "ckpt", keep=1)

    def test_empty_directory_loads_none(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpt")
        assert manager.load_latest() is None
        assert manager.generations() == []
        assert manager.last_skipped == []

    def test_temp_files_are_invisible(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpt")
        estimator = make_estimator()
        manager.save(estimator, cursor=5)
        # Simulate a kill mid-write of the next generation: stray temps.
        for name in (".ckpt-000001.payload.tmp", ".ckpt-000001.manifest.json.tmp"):
            (tmp_path / "ckpt" / name).write_bytes(b"torn garbage")
        assert manager.generations() == [0]
        assert manager.load_latest().generation == 0

    def test_corrupt_payload_falls_back_a_generation(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpt")
        first = make_estimator(seed=1)
        second = make_estimator(seed=1, tuples=400)
        manager.save(first, cursor=200)
        manager.save(second, cursor=400)
        corrupt_file(str(tmp_path / "ckpt" / "ckpt-000001.payload"))
        obs.reset_registry()
        registry = obs.get_registry()
        restored = manager.load_latest()
        assert restored.generation == 0
        assert restored.cursor == 200
        assert estimator_state_digest(restored.estimator) == estimator_state_digest(
            first
        )
        assert len(restored.skipped) == 1
        assert restored.skipped[0][0] == 1
        assert "checksum mismatch" in restored.skipped[0][1]
        assert registry.counter("recovery.fallbacks").value == 1

    def test_missing_payload_falls_back(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpt")
        manager.save(make_estimator(), cursor=100)
        manager.save(make_estimator(tuples=300), cursor=300)
        os.unlink(tmp_path / "ckpt" / "ckpt-000001.payload")
        restored = manager.load_latest()
        assert restored.generation == 0
        assert "unreadable" in restored.skipped[0][1]

    def test_digest_mismatch_in_manifest_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpt")
        manager.save(make_estimator(), cursor=100)
        manager.save(make_estimator(tuples=300), cursor=300)
        manifest_path = tmp_path / "ckpt" / "ckpt-000001.manifest.json"
        manifest = json.loads(manifest_path.read_bytes())
        manifest["state_digest"] = "0" * 64
        # Keep the manifest itself internally valid: only the recorded
        # logical digest lies, which load-time recomputation must catch.
        manifest_path.write_bytes(checkpoint_manifest_to_bytes(manifest))
        restored = manager.load_latest()
        assert restored.generation == 0
        assert "state digest mismatch" in restored.skipped[0][1]

    def test_all_generations_corrupt_loads_none(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpt")
        manager.save(make_estimator(), cursor=100)
        corrupt_file(str(tmp_path / "ckpt" / "ckpt-000000.payload"))
        assert manager.load_latest() is None
        assert len(manager.last_skipped) == 1

    def test_incompatible_template_is_skipped(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpt")
        manager.save(make_estimator(), cursor=100)
        other_geometry = ImplicationCountEstimator(
            ImplicationConditions(min_support=2), num_bitmaps=4, seed=0
        )
        assert manager.load_latest(template=other_geometry) is None
        assert "incompatible" in manager.last_skipped[0][1]

    def test_attachments_round_trip_and_are_verified(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpt")
        estimator = make_estimator()
        blobs = {"node-a": b"alpha" * 100, "node-b": b"beta" * 50}
        manager.save(estimator, cursor=10, attachments=blobs)
        restored = manager.load_latest()
        assert restored.attachments == blobs
        manager.save(estimator, cursor=20, attachments=blobs)
        corrupt_file(str(tmp_path / "ckpt" / "ckpt-000001.att-000"))
        restored = manager.load_latest()
        assert restored.generation == 0
        assert "attachment" in restored.skipped[0][1]


class TestManifestFormat:
    def manifest_bytes(self, tmp_path) -> bytes:
        manager = CheckpointManager(tmp_path / "ckpt")
        manager.save(make_estimator(), cursor=100)
        return (tmp_path / "ckpt" / "ckpt-000000.manifest.json").read_bytes()

    def test_round_trip_is_stable(self, tmp_path):
        data = self.manifest_bytes(tmp_path)
        manifest = checkpoint_manifest_from_bytes(data)
        assert checkpoint_manifest_to_bytes(manifest) == data
        assert manifest["version"] == CHECKPOINT_VERSION

    def test_unknown_version_raises_format_error(self, tmp_path):
        manifest = checkpoint_manifest_from_bytes(self.manifest_bytes(tmp_path))
        manifest["version"] = CHECKPOINT_VERSION + 1
        with pytest.raises(SketchFormatError, match="unsupported checkpoint"):
            checkpoint_manifest_from_bytes(checkpoint_manifest_to_bytes(manifest))

    def test_version_skew_on_disk_falls_back(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ckpt")
        manager.save(make_estimator(), cursor=100)
        manager.save(make_estimator(tuples=300), cursor=300)
        manifest_path = tmp_path / "ckpt" / "ckpt-000001.manifest.json"
        manifest = json.loads(manifest_path.read_bytes())
        manifest["version"] = 99
        manifest_path.write_bytes(checkpoint_manifest_to_bytes(manifest))
        restored = manager.load_latest()
        assert restored.generation == 0
        assert "unsupported checkpoint manifest version" in restored.skipped[0][1]

    def test_wrong_format_and_garbage_raise_format_error(self, tmp_path):
        with pytest.raises(SketchFormatError, match="not a checkpoint manifest"):
            checkpoint_manifest_from_bytes(b'{"format": "something-else"}')
        with pytest.raises(SketchFormatError, match="corrupt checkpoint manifest"):
            checkpoint_manifest_from_bytes(b"\xff\x00 not json")
        with pytest.raises(SketchFormatError):
            checkpoint_manifest_from_bytes(b'["a", "list"]')

    def test_missing_and_malformed_fields_raise_format_error(self, tmp_path):
        manifest = checkpoint_manifest_from_bytes(self.manifest_bytes(tmp_path))
        for mutate in (
            lambda m: m.pop("cursor"),
            lambda m: m.pop("state_digest"),
            lambda m: m.pop("payload"),
            lambda m: m.__setitem__("cursor", -1),
            lambda m: m.__setitem__("state_digest", "not-hex"),
            lambda m: m["payload"].__setitem__("file", "../escape"),
            lambda m: m["payload"].__setitem__("sha256", "ff"),
            lambda m: m.__setitem__("geometry", []),
        ):
            broken = json.loads(json.dumps(manifest))
            mutate(broken)
            with pytest.raises(SketchFormatError):
                checkpoint_manifest_from_bytes(checkpoint_manifest_to_bytes(broken))


class TestResumableIngest:
    def run_config(self, **overrides) -> dict:
        kwargs = dict(chunk_size=100, every=1, aggregate=False, grouped=False)
        kwargs.update(overrides)
        return kwargs

    def make_parts(self, seed: int = 5, size: int = 500):
        lhs, rhs = generate_stream("bursty", seed=seed, size=size)
        template = ImplicationCountEstimator(
            ImplicationConditions(min_support=2), num_bitmaps=8, seed=seed
        )
        return lhs, rhs, template

    def test_empty_checkpoint_dir_resume_runs_fresh(self, tmp_path):
        lhs, rhs, template = self.make_parts()
        manager = CheckpointManager(tmp_path / "ckpt")
        merged = ShardedIngestor(template, workers=1).ingest_checkpointed(
            lhs, rhs, manager=manager, **self.run_config()
        )
        single = template.spawn_sibling()
        single.update_batch(lhs, rhs, aggregate=False, grouped=False)
        # One chunked-merge pass vs one flat pass: merge of sibling chunk
        # estimators is exact for this stream shape; the meaningful
        # assertions are that an empty dir starts at zero and completes.
        assert merged.tuples_seen == len(lhs)
        assert manager.generations() != []
        assert manager.load_latest().cursor == len(lhs)

    def test_resume_equals_uninterrupted_bit_for_bit(self, tmp_path):
        lhs, rhs, template = self.make_parts()
        full = CheckpointManager(tmp_path / "full")
        uninterrupted = ShardedIngestor(template, workers=1).ingest_checkpointed(
            lhs, rhs, manager=full, **self.run_config()
        )
        part = CheckpointManager(tmp_path / "part")
        _, _, template2 = self.make_parts()
        ShardedIngestor(template2, workers=1).ingest_checkpointed(
            lhs[:300], rhs[:300], manager=part, **self.run_config()
        )
        _, _, template3 = self.make_parts()
        obs.reset_registry()
        registry = obs.get_registry()
        resumed = ShardedIngestor(template3, workers=1).ingest_checkpointed(
            lhs, rhs, manager=part, **self.run_config()
        )
        assert estimator_state_digest(resumed) == estimator_state_digest(
            uninterrupted
        )
        assert registry.counter("recovery.resumed_ingests").value == 1
        assert registry.counter("recovery.tuples_skipped").value == 300

    def test_resume_with_different_shape_refused(self, tmp_path):
        lhs, rhs, template = self.make_parts()
        manager = CheckpointManager(tmp_path / "ckpt")
        ShardedIngestor(template, workers=1).ingest_checkpointed(
            lhs[:200], rhs[:200], manager=manager, **self.run_config()
        )
        with pytest.raises(ValueError, match="cannot resume"):
            ShardedIngestor(template, workers=1).ingest_checkpointed(
                lhs, rhs, manager=manager, **self.run_config(chunk_size=250)
            )
        with pytest.raises(ValueError, match="cannot resume"):
            ShardedIngestor(template, workers=2).ingest_checkpointed(
                lhs, rhs, manager=manager, **self.run_config()
            )

    def test_checkpoint_cursor_beyond_stream_refused(self, tmp_path):
        lhs, rhs, template = self.make_parts()
        manager = CheckpointManager(tmp_path / "ckpt")
        ShardedIngestor(template, workers=1).ingest_checkpointed(
            lhs, rhs, manager=manager, **self.run_config()
        )
        with pytest.raises(ValueError, match="beyond"):
            ShardedIngestor(template, workers=1).ingest_checkpointed(
                lhs[:100], rhs[:100], manager=manager, **self.run_config()
            )

    def test_every_controls_checkpoint_cadence(self, tmp_path):
        lhs, rhs, template = self.make_parts()
        manager = CheckpointManager(tmp_path / "ckpt", keep=16)
        ShardedIngestor(template, workers=1).ingest_checkpointed(
            lhs, rhs, manager=manager, **self.run_config(every=2)
        )
        # 5 chunks, every=2 -> saves after chunks 2, 4 and the tail.
        cursors = []
        for generation in manager.generations():
            path = os.path.join(
                manager.directory, f"ckpt-{generation:06d}.manifest.json"
            )
            with open(path, "rb") as handle:
                cursors.append(checkpoint_manifest_from_bytes(handle.read())["cursor"])
        assert cursors == [200, 400, 500]

    def test_invalid_parameters_rejected(self, tmp_path):
        lhs, rhs, template = self.make_parts()
        manager = CheckpointManager(tmp_path / "ckpt")
        ingestor = ShardedIngestor(template, workers=1)
        with pytest.raises(ValueError, match="chunk_size"):
            ingestor.ingest_checkpointed(
                lhs, rhs, manager=manager, chunk_size=0
            )
        with pytest.raises(ValueError, match="every"):
            ingestor.ingest_checkpointed(
                lhs, rhs, manager=manager, chunk_size=10, every=0
            )
        with pytest.raises(ValueError, match="equal shapes"):
            ingestor.ingest_checkpointed(
                lhs[:10], rhs[:9], manager=manager, chunk_size=10
            )

    def test_checkpoint_metrics_recorded(self, tmp_path):
        obs.reset_registry()
        registry = obs.get_registry()
        lhs, rhs, template = self.make_parts(size=300)
        manager = CheckpointManager(tmp_path / "ckpt")
        ShardedIngestor(template, workers=1).ingest_checkpointed(
            lhs, rhs, manager=manager, **self.run_config()
        )
        assert registry.counter("checkpoint.saves").value == 3
        assert registry.counter("checkpoint.bytes_written").value > 0
        assert registry.gauge("checkpoint.latest_generation").value == 2.0
        assert registry.histogram("checkpoint.save_seconds").count == 3
        assert registry.counter("engine.chunks_ingested").value == 3
        # The retry counter exports as an explicit zero on healthy runs.
        assert registry.counter("engine.shard_retries").value == 0


class TestCoordinatorCheckpoint:
    def build_coordinator(self, seed: int = 2):
        template = ImplicationCountEstimator(
            ImplicationConditions(min_support=2), num_bitmaps=8, seed=seed
        )
        coordinator = Coordinator(template)
        for node in range(3):
            node_estimator = template.spawn_sibling()
            lhs, rhs = generate_stream("uniform", seed=seed + node, size=150)
            node_estimator.update_batch(lhs, rhs, aggregate=False, grouped=False)
            coordinator.receive(f"node-{node}", node_estimator.to_bytes())
        coordinator.receive("evil", b"garbage")
        return template, coordinator

    def test_checkpoint_restore_round_trip(self, tmp_path):
        template, coordinator = self.build_coordinator()
        coordinator.ingest_sharded(
            *generate_stream("skewed", seed=9, size=120), workers=1
        )
        before_digest = estimator_state_digest(coordinator.merged_estimator())
        manager = CheckpointManager(tmp_path / "ckpt")
        manifest = coordinator.checkpoint(manager, cursor=420)
        assert manifest["extra"]["kind"] == "coordinator"
        fresh = Coordinator(template)
        assert fresh.restore(manager) is True
        assert estimator_state_digest(fresh.merged_estimator()) == before_digest
        assert fresh.node_count == coordinator.node_count
        assert fresh.bytes_received == coordinator.bytes_received
        assert fresh.rejected_payloads == coordinator.rejected_payloads
        assert fresh.rejection_reasons == coordinator.rejection_reasons
        # The epoch counter survives, so post-restore sharded ingests keep
        # namespacing forward instead of colliding with pre-crash shards.
        assert fresh._ingest_epoch == coordinator._ingest_epoch

    def test_restore_empty_directory_returns_false(self, tmp_path):
        template, coordinator = self.build_coordinator()
        manager = CheckpointManager(tmp_path / "ckpt")
        assert coordinator.restore(manager) is False
        assert coordinator.node_count == 3  # untouched

    def test_corrupted_node_attachment_degrades_that_node_only(self, tmp_path):
        template, coordinator = self.build_coordinator()
        manager = CheckpointManager(tmp_path / "ckpt")
        coordinator.checkpoint(manager)
        coordinator.checkpoint(manager)  # second generation to fall back to
        # Corrupt one attachment of the *latest* generation: the loader's
        # checksums catch it and recovery falls back one generation whole.
        corrupt_file(str(tmp_path / "ckpt" / "ckpt-000001.att-000"))
        fresh = Coordinator(template)
        assert fresh.restore(manager) is True
        assert fresh.node_count == 3


class TestRecoveryCli:
    def test_checkpoint_then_resume_same_digest(self, tmp_path, capsys):
        directory = str(tmp_path / "ckpt")
        argv = RunConfig(
            tuples=600, chunk_size=150, num_bitmaps=8, seed=4
        ).to_argv("checkpoint", directory)
        assert recovery_cli_main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["mode"] == "checkpoint"
        assert first["restored_generation"] is None
        resume_argv = RunConfig(
            tuples=600, chunk_size=150, num_bitmaps=8, seed=4
        ).to_argv("resume", directory)
        assert recovery_cli_main(resume_argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["mode"] == "resume"
        assert second["digest"] == first["digest"]
        assert second["restored_cursor"] == 600

    def test_checkpoint_refuses_populated_directory(self, tmp_path, capsys):
        directory = str(tmp_path / "ckpt")
        argv = RunConfig(tuples=200, chunk_size=100, num_bitmaps=8).to_argv(
            "checkpoint", directory
        )
        assert recovery_cli_main(argv) == 0
        capsys.readouterr()
        assert recovery_cli_main(argv) == 2
        err = capsys.readouterr().err
        assert "already holds generations" in err

    def test_resume_on_empty_directory_is_a_fresh_run(self, tmp_path, capsys):
        directory = str(tmp_path / "empty")
        argv = RunConfig(tuples=200, chunk_size=100, num_bitmaps=8).to_argv(
            "resume", directory
        )
        assert recovery_cli_main(argv) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["restored_generation"] is None
        assert report["cursor"] == 200

    def test_metrics_json_includes_checkpoint_and_retry_counters(
        self, tmp_path, capsys
    ):
        obs.reset_registry()
        directory = str(tmp_path / "ckpt")
        metrics_path = str(tmp_path / "metrics.json")
        argv = RunConfig(tuples=200, chunk_size=100, num_bitmaps=8).to_argv(
            "checkpoint", directory
        ) + ["--metrics-json", metrics_path]
        assert recovery_cli_main(argv) == 0
        with open(metrics_path, "r", encoding="utf-8") as handle:
            metrics = json.load(handle)
        assert metrics["counters"]["checkpoint.saves"] == 2
        assert "engine.shard_retries" in metrics["counters"]

    def test_bad_flag_values_exit_2(self, tmp_path, capsys):
        base = ["checkpoint", "--checkpoint-dir", str(tmp_path / "x")]
        assert recovery_cli_main(base + ["--tuples", "0"]) == 2
        assert recovery_cli_main(base + ["--keep", "1"]) == 2


class TestRunConfig:
    def test_argv_round_trip_reproduces_stream_and_template(self):
        config = RunConfig(
            tuples=123, chunk_size=40, seed=9, profile="skewed", theta=0.5,
            max_multiplicity=2,
        )
        argv = config.to_argv("checkpoint", "/tmp/dir")
        assert argv[0] == "checkpoint"
        assert "--max-multiplicity" in argv
        lhs_a, _ = config.stream()
        lhs_b, _ = RunConfig(
            tuples=123, chunk_size=40, seed=9, profile="skewed", theta=0.5,
            max_multiplicity=2,
        ).stream()
        assert np.array_equal(lhs_a, lhs_b)
        assert estimator_state_digest(config.template()) == estimator_state_digest(
            config.template()
        )

    def test_run_checkpointed_reports(self, tmp_path):
        config = RunConfig(tuples=250, chunk_size=100, num_bitmaps=8)
        report = run_checkpointed(config, str(tmp_path / "ckpt"))
        assert report["chunks"] == 3
        assert report["cursor"] == 250
        assert report["generations"] == [0, 1, 2]
        assert report["skipped_generations"] == []
