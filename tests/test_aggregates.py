"""Tests for aggregate implication statistics (exact and sampled)."""

from __future__ import annotations

import pytest

from repro.core.aggregates import (
    ExactImplicationAggregates,
    SampledImplicationAggregates,
)
from repro.core.conditions import ImplicationConditions


def build_population(aggregates) -> None:
    """3 satisfied itemsets (multiplicities 1, 2, 2; supports 10, 12, 8)
    and 2 violated ones (multiplicity > 3)."""
    conditions_partners = {
        "sat-1": ["b1"] * 10,
        "sat-2": ["b1"] * 6 + ["b2"] * 6,
        "sat-3": ["b1"] * 4 + ["b2"] * 4,
        "bad-1": ["b1", "b2", "b3", "b4"] * 3,
        "bad-2": ["b1", "b2", "b3", "b4", "b5"] * 2,
    }
    for itemset, partners in conditions_partners.items():
        for partner in partners:
            aggregates.update(itemset, partner)


@pytest.fixture
def conditions() -> ImplicationConditions:
    return ImplicationConditions(max_multiplicity=3, min_support=5, top_c=3)


class TestExactAggregates:
    def test_population_counts(self, conditions):
        aggregates = ExactImplicationAggregates(conditions)
        build_population(aggregates)
        assert aggregates.population_count("satisfied") == 3.0
        assert aggregates.population_count("violated") == 2.0
        assert aggregates.population_count("supported") == 5.0

    def test_average_multiplicity(self, conditions):
        aggregates = ExactImplicationAggregates(conditions)
        build_population(aggregates)
        assert aggregates.average_multiplicity("satisfied") == pytest.approx(
            (1 + 2 + 2) / 3
        )
        # Violated itemsets dropped their partner tables; the bound + 1
        # floor (4) is reported for each.
        assert aggregates.average_multiplicity("violated") == pytest.approx(4.0)

    def test_average_and_median_support(self, conditions):
        aggregates = ExactImplicationAggregates(conditions)
        build_population(aggregates)
        assert aggregates.average_support("satisfied") == pytest.approx(10.0)
        assert aggregates.median_support("satisfied") == pytest.approx(10.0)

    def test_multiplicity_histogram(self, conditions):
        aggregates = ExactImplicationAggregates(conditions)
        build_population(aggregates)
        histogram = aggregates.multiplicity_histogram("satisfied")
        assert histogram == {1: 1, 2: 2}

    def test_empty_population(self, conditions):
        aggregates = ExactImplicationAggregates(conditions)
        assert aggregates.average_multiplicity() == 0.0
        assert aggregates.average_support() == 0.0
        assert aggregates.median_support() == 0.0

    def test_unknown_population_rejected(self, conditions):
        aggregates = ExactImplicationAggregates(conditions)
        with pytest.raises(ValueError):
            aggregates.average_multiplicity("everything")

    def test_update_many(self, conditions):
        aggregates = ExactImplicationAggregates(conditions)
        aggregates.update_many([("a", "b")] * 6)
        assert aggregates.population_count("satisfied") == 1.0
        assert aggregates.tuples_seen == 6


class TestSampledAggregates:
    def test_exact_below_budget(self, conditions):
        sampled = SampledImplicationAggregates(conditions, sample_budget=1000)
        build_population(sampled)
        assert sampled.scale_factor == 1.0
        assert sampled.population_count("satisfied") == 3.0
        assert sampled.average_multiplicity("satisfied") == pytest.approx(5 / 3)

    def test_population_estimates_scale(self):
        """With the budget forcing level promotions, population counts must
        still land near the truth."""
        conditions = ImplicationConditions(
            max_multiplicity=2, min_support=4, top_c=1
        )
        sampled = SampledImplicationAggregates(
            conditions, sample_budget=400, per_value_bound=8, seed=3
        )
        n = 3000
        for itemset in range(n):
            partners = 1 if itemset % 2 == 0 else 3  # half satisfy, half violate
            for __ in range(4):
                for p in range(partners):
                    sampled.update(itemset, (itemset, p))
        assert sampled.scale_factor > 1.0
        assert sampled.population_count("satisfied") == pytest.approx(
            n / 2, rel=0.4
        )
        # Aggregate means remain near truth: satisfied itemsets have
        # multiplicity exactly 1 here.
        assert sampled.average_multiplicity("satisfied") == pytest.approx(
            1.0, abs=0.2
        )

    def test_sample_size_reporting(self, conditions):
        sampled = SampledImplicationAggregates(conditions, sample_budget=1000)
        build_population(sampled)
        assert sampled.sample_size("supported") == 5

    def test_batch_interface(self):
        import numpy as np

        conditions = ImplicationConditions(max_multiplicity=2, min_support=2)
        sampled = SampledImplicationAggregates(conditions, seed=1)
        lhs = np.array([1, 1, 2, 2], dtype=np.uint64)
        rhs = np.array([9, 9, 8, 8], dtype=np.uint64)
        sampled.update_batch(lhs, rhs)
        assert sampled.tuples_seen == 4
        assert sampled.population_count("satisfied") == 2.0
