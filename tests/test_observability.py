"""Tests for the observability layer (metrics registry + instrumentation)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.estimator import ImplicationCountEstimator
from repro.datasets.synthetic import generate_dataset_one
from repro.engine import ShardedIngestor
from repro.observability import (
    MetricsRegistry,
    get_registry,
    reset_registry,
    scoped_registry,
    set_registry,
)


@pytest.fixture()
def registry():
    """A fresh global registry for the duration of one test."""
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


class TestRegistry:
    def test_counter_accumulates(self, registry):
        registry.counter("x").add()
        registry.counter("x").add(4)
        assert registry.counter("x").value == 5

    def test_gauge_last_write_wins(self, registry):
        registry.gauge("g").set(3.0)
        registry.gauge("g").set(1.5)
        assert registry.gauge("g").value == 1.5

    def test_histogram_summary(self, registry):
        histogram = registry.histogram("h")
        for value in (2.0, 8.0, 5.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 15.0
        assert histogram.minimum == 2.0
        assert histogram.maximum == 8.0
        assert histogram.mean == 5.0

    def test_name_cannot_change_type(self, registry):
        registry.counter("metric")
        with pytest.raises(ValueError):
            registry.gauge("metric")
        with pytest.raises(ValueError):
            registry.histogram("metric")

    def test_snapshot_roundtrips_through_json(self, registry):
        registry.counter("c").add(7)
        registry.gauge("g").set(0.25)
        registry.histogram("h").observe(3.0)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        other = MetricsRegistry()
        other.merge_snapshot(snapshot)
        assert other.snapshot() == registry.snapshot()

    def test_merge_snapshot_combines(self, registry):
        registry.counter("c").add(2)
        registry.histogram("h").observe(1.0)
        incoming = MetricsRegistry()
        incoming.counter("c").add(3)
        incoming.histogram("h").observe(9.0)
        registry.merge_snapshot(incoming.snapshot())
        assert registry.counter("c").value == 5
        assert registry.histogram("h").count == 2
        assert registry.histogram("h").maximum == 9.0
        assert registry.histogram("h").minimum == 1.0

    def test_merge_empty_histogram_is_noop(self, registry):
        registry.histogram("h").observe(4.0)
        registry.merge_snapshot(MetricsRegistry().snapshot())
        empty = MetricsRegistry()
        empty.histogram("h")  # registered but never observed
        registry.merge_snapshot(empty.snapshot())
        assert registry.histogram("h").count == 1
        assert registry.histogram("h").minimum == 4.0

    def test_histogram_buckets_track_observations(self, registry):
        from repro.observability import HISTOGRAM_BUCKET_COUNT

        histogram = registry.histogram("h")
        for value in (0.001, 0.001, 8.0):
            histogram.observe(value)
        assert len(histogram.buckets) == HISTOGRAM_BUCKET_COUNT
        assert sum(histogram.buckets) == 3
        # The two equal observations share one bucket.
        assert max(histogram.buckets) == 2

    def test_histogram_quantile(self, registry):
        histogram = registry.histogram("h")
        for value in range(1, 101):
            histogram.observe(float(value))
        p50 = histogram.quantile(0.5)
        p99 = histogram.quantile(0.99)
        # Log-spaced buckets: estimates are bucket upper bounds, so they
        # can overshoot by at most one factor-of-two step (and are clamped
        # into the observed range).
        assert 50.0 <= p50 <= 100.0
        assert p50 <= p99 <= 100.0
        assert histogram.quantile(0.0) >= 1.0
        assert histogram.quantile(1.0) == 100.0

    def test_histogram_quantile_edge_cases(self, registry):
        histogram = registry.histogram("h")
        assert histogram.quantile(0.5) is None
        with pytest.raises(ValueError):
            histogram.quantile(1.5)
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)
        histogram.observe(3.0)
        assert histogram.quantile(0.5) == 3.0

    def test_histogram_buckets_merge_elementwise(self, registry):
        registry.histogram("h").observe(1.0)
        incoming = MetricsRegistry()
        incoming.histogram("h").observe(1.0)
        incoming.histogram("h").observe(64.0)
        assert registry.merge_snapshot(incoming.snapshot())
        merged = registry.histogram("h")
        assert merged.count == 3
        assert sum(merged.buckets) == 3
        # Both 1.0 observations landed in the same bucket on both sides.
        assert max(merged.buckets) == 2
        assert merged.quantile(1.0) == 64.0

    def test_merge_accepts_v1_summaries_without_buckets(self, registry):
        registry.histogram("h").observe(2.0)
        incoming = MetricsRegistry()
        incoming.histogram("h").observe(8.0)
        snapshot = incoming.snapshot()
        del snapshot["histograms"]["h"]["buckets"]  # a v1 writer's summary
        assert registry.merge_snapshot(snapshot)
        assert registry.histogram("h").count == 2
        assert registry.histogram("h").maximum == 8.0
        # Count/sum/extrema merged; bucket mass only covers local points.
        assert sum(registry.histogram("h").buckets) == 1

    def test_merge_rejects_malformed_snapshot_atomically(self, registry):
        registry.counter("c").add(2)
        registry.histogram("h").observe(1.0)
        before = registry.snapshot()
        # Counters valid, histograms malformed: without up-front
        # validation the counter fold would land before the fold raised.
        malformed = {
            "counters": {"c": 5},
            "gauges": {},
            "histograms": {"h": {"count": "three", "sum": 3.0}},
        }
        assert registry.merge_snapshot(malformed) is False
        after = registry.snapshot()
        rejected = after["counters"].pop("observability.rejected_snapshots")
        assert rejected == 1
        assert after == before

    @pytest.mark.parametrize(
        "snapshot",
        [
            "not a dict",
            {"counters": ["c"]},
            {"counters": {"c": "NaN-ish"}},
            {"counters": {3: 1}},
            {"gauges": {"g": None}},
            {"histograms": {"h": 7}},
            {"histograms": {"h": {"count": -1, "sum": 0.0}}},
            {"histograms": {"h": {"count": True, "sum": 0.0}}},
            {"histograms": {"h": {"count": 1, "sum": "x"}}},
            {"histograms": {"h": {"count": 1, "sum": 1.0, "buckets": [1]}}},
            {"histograms": {"h": {"count": 1, "sum": 1.0, "min": "low"}}},
        ],
    )
    def test_merge_rejects_each_malformation(self, registry, snapshot):
        assert registry.merge_snapshot(snapshot) is False
        assert (
            registry.counter("observability.rejected_snapshots").value == 1
        )

    def test_merge_rejects_cross_kind_name_conflicts(self, registry):
        registry.counter("metric").add(1)
        assert registry.merge_snapshot({"gauges": {"metric": 1.0}}) is False
        assert registry.counter("metric").value == 1
        assert (
            registry.counter("observability.rejected_snapshots").value == 1
        )

    def test_render_lists_every_metric(self, registry):
        registry.counter("ingest.tuples").add(10)
        registry.gauge("depth").set(2)
        registry.histogram("bytes").observe(100.0)
        table = registry.render()
        for name in ("ingest.tuples", "depth", "bytes"):
            assert name in table

    def test_render_empty(self, registry):
        assert "no metrics" in registry.render()

    def test_scoped_registry_restores(self, registry):
        registry.counter("outer").add(1)
        with scoped_registry() as inner:
            get_registry().counter("inner").add(1)
            assert inner.counter("inner").value == 1
            assert inner.counter("outer").value == 0
        assert get_registry() is registry
        assert registry.counter("inner").value == 0

    def test_reset_registry_installs_fresh(self, registry):
        registry.counter("x").add(1)
        reset_registry()
        try:
            assert get_registry().counter("x").value == 0
        finally:
            set_registry(registry)


class TestInstrumentation:
    def test_update_batch_counts_tuples_and_dispatch(self, registry):
        data = generate_dataset_one(300, 150, c=1, seed=9)
        estimator = ImplicationCountEstimator(data.conditions, seed=9)
        estimator.update_batch(data.lhs, data.rhs)
        assert registry.counter("ingest.batches").value == 1
        assert registry.counter("ingest.tuples").value == len(data.lhs)
        assert registry.counter("batch.blocks").value >= 1
        assert registry.counter("batch.segments").value >= 1
        assert registry.counter("batch.groups").value >= 1
        # The head of a stream always floats fringes rightward.
        assert registry.counter("nips.fringe_floats").value >= 1

    def test_serialize_metrics(self, registry):
        data = generate_dataset_one(200, 100, c=1, seed=3)
        estimator = ImplicationCountEstimator(data.conditions, seed=3)
        estimator.update_batch(data.lhs, data.rhs)
        payload = estimator.to_bytes()
        ImplicationCountEstimator.from_bytes(payload)
        assert registry.counter("serialize.encoded").value == 1
        assert registry.counter("serialize.decoded").value == 1
        histogram = registry.histogram("serialize.payload_bytes")
        assert histogram.count == 1
        assert histogram.maximum == len(payload)

    def test_sharded_run_ships_worker_metrics(self, registry):
        data = generate_dataset_one(300, 150, c=1, seed=4)
        template = ImplicationCountEstimator(data.conditions, seed=4)
        ingestor = ShardedIngestor(template, workers=2)
        ingestor.ingest(data.lhs, data.rhs)
        assert registry.counter("sharded.ingests").value == 1
        assert registry.counter("sharded.jobs").value == 2
        # Worker-side metrics crossed the process boundary: one wall-time
        # observation and one tuple count per shard.
        assert registry.histogram("sharded.shard_seconds").count == 2
        assert registry.counter("sharded.shard_tuples").value == len(data.lhs)
        # Worker-side batch counters merged too (both shards ran the
        # batch engine on their half of the stream).
        assert registry.counter("ingest.tuples").value == len(data.lhs)


class TestCliExport:
    def test_metrics_json_written(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_SCALE", "quick")
        target = tmp_path / "metrics.json"
        assert main(
            ["throughput", "--workers", "1", "--metrics-json", str(target)]
        ) == 0
        exported = json.loads(target.read_text())
        assert exported["counters"]["ingest.tuples"] > 0
        assert "sharded.shard_seconds" in exported["histograms"]
        out = capsys.readouterr().out
        assert "ingest.tuples" in out  # text table printed alongside

    def test_metrics_json_rejects_missing_directory(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(
                [
                    "throughput",
                    "--metrics-json",
                    "/nonexistent-dir-xyz/metrics.json",
                ]
            )
