"""Tests for the single NIPS bitmap: zones, floating fringe, CI readout."""

from __future__ import annotations

import pytest

from repro.core.conditions import ImplicationConditions
from repro.core.nips import NIPSBitmap


def make_bitmap(fringe_size=4, conditions=None, **kwargs) -> NIPSBitmap:
    conditions = conditions or ImplicationConditions(
        max_multiplicity=1, min_support=1, top_c=1, min_top_confidence=1.0
    )
    return NIPSBitmap(conditions, length=32, fringe_size=fringe_size, **kwargs)


class TestGeometry:
    def test_initial_zones(self):
        bitmap = make_bitmap()
        assert bitmap.fringe_start == 0
        assert bitmap.fringe_end == 3
        assert bitmap.zone_of(0) == "fringe"
        assert bitmap.zone_of(4) == "zone0"

    def test_unbounded_fringe_spans_everything(self):
        bitmap = make_bitmap(fringe_size=None)
        assert bitmap.fringe_end == 31
        assert bitmap.zone_of(31) == "fringe"

    def test_cell_capacity_doubles_leftward(self):
        bitmap = make_bitmap(capacity_slack=2)
        assert bitmap.cell_capacity(3) == 2  # right edge expects 1 itemset
        assert bitmap.cell_capacity(2) == 4
        assert bitmap.cell_capacity(0) == 16

    def test_unbounded_capacity_is_none(self):
        assert make_bitmap(fringe_size=None).cell_capacity(0) is None

    def test_validation(self):
        conditions = ImplicationConditions()
        with pytest.raises(ValueError):
            NIPSBitmap(conditions, length=0)
        with pytest.raises(ValueError):
            NIPSBitmap(conditions, fringe_size=0)
        with pytest.raises(ValueError):
            NIPSBitmap(conditions, capacity_slack=0)


class TestFloating:
    def test_zone0_hit_floats_fringe(self):
        bitmap = make_bitmap()
        bitmap.update_at(10, "a", "b")
        assert bitmap.fringe_end == 10
        assert bitmap.fringe_start == 7
        assert bitmap.zone_of(6) == "zone1"

    def test_float_fixates_skipped_cells(self):
        """Cells dropped off the left edge count as value-1 (Section 4.3.3)."""
        bitmap = make_bitmap()
        bitmap.update_at(0, "a0", "b")
        bitmap.update_at(10, "a1", "b")
        # Cell 0 (and everything below 7) is now Zone-1: reads as one.
        assert bitmap.leftmost_zero_nonimplication() == 7

    def test_violation_sets_cell_and_advances(self):
        bitmap = make_bitmap()
        bitmap.update_at(0, "a", "b1")
        bitmap.update_at(0, "a", "b2")  # K=1 violated -> cell 0 value 1
        assert bitmap.fringe_start == 1
        assert bitmap.leftmost_zero_nonimplication() == 1

    def test_violation_in_middle_does_not_advance(self):
        bitmap = make_bitmap()
        bitmap.update_at(2, "a", "b1")
        bitmap.update_at(2, "a", "b2")
        assert bitmap.fringe_start == 0
        assert bitmap.leftmost_zero_nonimplication() == 0

    def test_advance_skips_consecutive_ones(self):
        bitmap = make_bitmap()
        # Violate cell 1 first, then cell 0: the advance should jump to 2.
        bitmap.update_at(1, "a1", "b1")
        bitmap.update_at(1, "a1", "b2")
        bitmap.update_at(0, "a0", "b1")
        bitmap.update_at(0, "a0", "b2")
        assert bitmap.fringe_start == 2

    def test_decided_cell_ignores_new_itemsets(self):
        bitmap = make_bitmap()
        bitmap.update_at(2, "a", "b1")
        bitmap.update_at(2, "a", "b2")  # decides cell 2
        bitmap.update_at(2, "fresh", "b1")
        assert bitmap.stored_itemsets() == 0

    def test_fringe_start_never_regresses(self):
        bitmap = make_bitmap()
        bitmap.update_at(10, "a", "b")
        start = bitmap.fringe_start
        bitmap.update_at(0, "early", "b")  # Zone-1 hit: no state change
        assert bitmap.fringe_start == start
        assert bitmap.stored_itemsets() == 1


class TestOverflow:
    def test_overflow_decides_cell(self):
        bitmap = make_bitmap(capacity_slack=1)
        # Right edge cell (3) has capacity 1: the second itemset overflows.
        bitmap.update_at(3, "a1", "b")
        bitmap.update_at(3, "a2", "b")
        assert bitmap.leftmost_zero_nonimplication() == 0  # cell 3 is 1, 0-2 zero
        assert 3 in bitmap._value_one

    def test_existing_itemset_never_overflows(self):
        bitmap = make_bitmap(capacity_slack=1)
        bitmap.update_at(3, "a1", "b")
        for _ in range(10):
            bitmap.update_at(3, "a1", "b")  # updates, not inserts
        assert 3 not in bitmap._value_one

    def test_unbounded_fringe_never_overflows(self):
        bitmap = make_bitmap(fringe_size=None)
        for index in range(100):
            bitmap.update_at(0, f"a{index}", "b")
        assert bitmap.stored_itemsets() == 100
        assert bitmap.leftmost_zero_nonimplication() == 0


class TestReadouts:
    def test_supported_requires_min_support(self):
        conditions = ImplicationConditions(
            max_multiplicity=1, min_support=3, top_c=1, min_top_confidence=1.0
        )
        bitmap = make_bitmap(conditions=conditions)
        bitmap.update_at(0, "a", "b")
        assert bitmap.leftmost_zero_supported() == 0
        bitmap.update_at(0, "a", "b")
        bitmap.update_at(0, "a", "b")
        assert bitmap.leftmost_zero_supported() == 1
        # Still not a non-implication: it satisfies the conditions.
        assert bitmap.leftmost_zero_nonimplication() == 0

    def test_supported_run_must_be_contiguous(self):
        conditions = ImplicationConditions(min_support=1)
        bitmap = make_bitmap(conditions=conditions)
        bitmap.update_at(2, "a", "b")
        assert bitmap.leftmost_zero_supported() == 0  # cell 0 empty

    def test_implication_estimate_is_difference(self):
        conditions = ImplicationConditions(
            max_multiplicity=1, min_support=1, top_c=1, min_top_confidence=1.0
        )
        bitmap = make_bitmap(conditions=conditions)
        bitmap.update_at(0, "good", "b")
        estimate = bitmap.estimate_implication(correct_bias=False)
        assert estimate == pytest.approx(2.0 ** 1 - 2.0 ** 0)

    def test_nonimplication_estimate_raw(self):
        bitmap = make_bitmap()
        bitmap.update_at(0, "a", "b1")
        bitmap.update_at(0, "a", "b2")
        assert bitmap.estimate_nonimplication(correct_bias=False) == 2.0

    def test_scalar_update_uses_own_hash(self):
        bitmap = make_bitmap()
        bitmap.update("alpha", "b1")
        bitmap.update("alpha", "b2")
        assert bitmap.tuples_seen == 2
        assert bitmap.leftmost_zero_nonimplication() >= 0


class TestMemoryAccounting:
    def test_memory_freed_on_violation(self):
        bitmap = make_bitmap()
        bitmap.update_at(0, "a", "b1")
        assert bitmap.counter_count() == 2
        bitmap.update_at(0, "a", "b2")
        assert bitmap.counter_count() == 0

    def test_stored_itemsets_counts_across_cells(self):
        bitmap = make_bitmap()
        bitmap.update_at(0, "a0", "b")
        bitmap.update_at(1, "a1", "b")
        assert bitmap.stored_itemsets() == 2
