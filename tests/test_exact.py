"""Tests for the exact reference counter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import ExactImplicationCounter
from repro.core.conditions import ImplicationConditions, ItemsetStatus


class TestExactSemantics:
    def test_basic_counts(self, one_to_one):
        counter = ExactImplicationCounter(one_to_one)
        counter.update("a1", "b1")
        counter.update("a2", "b1")
        counter.update("a2", "b2")  # violates K=1
        assert counter.implication_count() == 1.0
        assert counter.nonimplication_count() == 1.0
        assert counter.supported_distinct_count() == 2.0
        assert counter.distinct_count() == 2

    def test_sticky_violation(self, one_to_one):
        counter = ExactImplicationCounter(one_to_one)
        counter.update("a", "b1")
        counter.update("a", "b2")
        for _ in range(50):
            counter.update("a", "b1")
        assert counter.implication_count() == 0.0
        assert counter.status_of("a") is ItemsetStatus.VIOLATED

    def test_support_gate(self):
        conditions = ImplicationConditions(max_multiplicity=1, min_support=3)
        counter = ExactImplicationCounter(conditions)
        counter.update("a", "b")
        counter.update("a", "b")
        assert counter.supported_distinct_count() == 0.0
        assert counter.implication_count() == 0.0
        counter.update("a", "b")
        assert counter.implication_count() == 1.0

    def test_satisfying_itemsets(self, one_to_one):
        counter = ExactImplicationCounter(one_to_one)
        counter.update("good", "b")
        counter.update("bad", "b1")
        counter.update("bad", "b2")
        assert counter.satisfying_itemsets() == ["good"]

    def test_weighted_updates(self, one_to_one):
        counter = ExactImplicationCounter(one_to_one)
        counter.update("a", "b", weight=10)
        assert counter.tuples_seen == 10
        assert counter.implication_count() == 1.0

    def test_update_many(self, one_to_one):
        counter = ExactImplicationCounter(one_to_one)
        counter.update_many([("a", "b"), ("c", "d")])
        assert counter.implication_count() == 2.0

    def test_batch_matches_scalar(self, one_to_one):
        rng = np.random.default_rng(0)
        lhs = rng.integers(0, 50, size=2000)
        rhs = rng.integers(0, 10, size=2000)
        scalar = ExactImplicationCounter(one_to_one)
        batch = ExactImplicationCounter(one_to_one)
        for a, b in zip(lhs.tolist(), rhs.tolist()):
            scalar.update(a, b)
        batch.update_batch(lhs, rhs)
        assert scalar.implication_count() == batch.implication_count()
        assert scalar.nonimplication_count() == batch.nonimplication_count()

    def test_batch_shape_mismatch(self, one_to_one):
        counter = ExactImplicationCounter(one_to_one)
        with pytest.raises(ValueError):
            counter.update_batch(np.zeros(2), np.zeros(3))

    def test_memory_grows_with_distinct_itemsets(self, one_to_one):
        """The exact counter pays O(distinct) memory — the cost the paper's
        constrained environments cannot afford."""
        counter = ExactImplicationCounter(one_to_one)
        for index in range(1000):
            counter.update(index, "b")
        assert counter.counter_count() >= 2000  # support + partner per itemset
