"""Tests for the trigger framework."""

from __future__ import annotations

import pytest

from repro.core.triggers import BaselineTrigger, Trigger, TriggerBoard, TriggerEvent


class Dial:
    """A controllable statistic."""

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def __call__(self) -> float:
        return self.value


class TestTrigger:
    def test_raises_and_clears_with_hysteresis(self):
        dial = Dial(0)
        trigger = Trigger("t", dial, threshold=100, clear_below=50)
        assert trigger.poll(1) is None
        dial.value = 150
        event = trigger.poll(2)
        assert event is not None and event.kind == "raised"
        # Dropping below the threshold but above clear_below keeps it raised.
        dial.value = 80
        assert trigger.poll(3) is None
        assert trigger.raised
        dial.value = 40
        event = trigger.poll(4)
        assert event is not None and event.kind == "cleared"
        assert not trigger.raised

    def test_no_duplicate_raise_events(self):
        dial = Dial(200)
        trigger = Trigger("t", dial, threshold=100)
        assert trigger.poll(1).kind == "raised"
        assert trigger.poll(2) is None  # still raised, no new event

    def test_clear_below_validation(self):
        with pytest.raises(ValueError):
            Trigger("t", Dial(), threshold=10, clear_below=20)

    def test_event_repr_contains_context(self):
        event = TriggerEvent("t", "raised", 150.0, 100.0, 7)
        assert "t" in repr(event) and "raised" in repr(event)


class TestBaselineTrigger:
    def test_arms_then_fires_relative_to_baseline(self):
        dial = Dial(40)
        trigger = BaselineTrigger("b", dial, jump=60, arm_at=100)
        assert trigger.poll(50) is None  # before arming: inert
        assert not trigger.ready()
        assert trigger.poll(100) is None  # arming poll captures baseline 40
        assert trigger.ready()
        dial.value = 95  # 40 + 55 < 40 + 60
        assert trigger.poll(150) is None
        dial.value = 105
        event = trigger.poll(200)
        assert event is not None and event.kind == "raised"
        assert event.threshold == pytest.approx(100.0)

    def test_clear_fraction_hysteresis(self):
        dial = Dial(0)
        trigger = BaselineTrigger("b", dial, jump=100, arm_at=0, clear_fraction=0.5)
        trigger.poll(0)  # baseline 0
        dial.value = 120
        assert trigger.poll(1).kind == "raised"
        dial.value = 70  # above 0 + 100*0.5
        assert trigger.poll(2) is None
        dial.value = 30
        assert trigger.poll(3).kind == "cleared"

    def test_validation(self):
        with pytest.raises(ValueError):
            BaselineTrigger("b", Dial(), jump=0, arm_at=0)
        with pytest.raises(ValueError):
            BaselineTrigger("b", Dial(), jump=1, arm_at=0, clear_fraction=2.0)


class TestTriggerBoard:
    def test_polls_all_and_records_history(self):
        hot = Dial(500)
        cold = Dial(0)
        board = TriggerBoard(
            [Trigger("hot", hot, threshold=100), Trigger("cold", cold, threshold=100)]
        )
        events = board.poll(1)
        assert [event.trigger for event in events] == ["hot"]
        assert board.raised() == ["hot"]
        assert len(board.history()) == 1
        assert board.history("cold") == []

    def test_duplicate_names_rejected(self):
        board = TriggerBoard([Trigger("x", Dial(), threshold=1)])
        with pytest.raises(ValueError):
            board.add(Trigger("x", Dial(), threshold=1))

    def test_end_to_end_with_estimator(self):
        """Board wired to a real estimator statistic."""
        from repro.core.conditions import ImplicationConditions
        from repro.core.estimator import ImplicationCountEstimator

        conditions = ImplicationConditions(max_multiplicity=2, min_support=1)
        # Deep fringe: quiet traffic has zero violations and the threshold
        # must not be reachable by fixation noise alone (Section 4.3.3).
        estimator = ImplicationCountEstimator(
            conditions, num_bitmaps=16, fringe_size=8, seed=1
        )
        board = TriggerBoard(
            [Trigger("fanout", estimator.nonimplication_count, threshold=50)]
        )
        # Quiet traffic: no violations.
        for item in range(200):
            estimator.update(item, item)
            board.poll(estimator.tuples_seen)
        assert board.raised() == []
        # Burst of violators.
        for item in range(400):
            for partner in range(3):
                estimator.update(("bad", item), partner)
        events = board.poll(estimator.tuples_seen)
        assert [event.kind for event in events] == ["raised"]
