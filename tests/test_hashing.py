"""Unit and property tests for repro.sketch.hashing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sketch.hashing import (
    MASK64,
    HashFamily,
    MultiplyShiftHash,
    PolynomialHash,
    SplitMix64Hash,
    TabulationHash,
    combine_encoded,
    encode_item,
    encode_items,
)

ALL_FAMILIES = ["splitmix", "multiply-shift", "polynomial", "tabulation"]

hashable_items = st.one_of(
    st.integers(min_value=-(1 << 70), max_value=1 << 70),
    st.text(max_size=30),
    st.binary(max_size=30),
    st.floats(allow_nan=False),
    st.booleans(),
    st.none(),
)


class TestEncodeItem:
    @given(hashable_items)
    def test_range_and_determinism(self, item):
        encoded = encode_item(item)
        assert 0 <= encoded <= MASK64
        assert encode_item(item) == encoded

    def test_int_identity_low_bits(self):
        assert encode_item(5) == 5
        assert encode_item(-1) == MASK64

    def test_tuples_encode_recursively(self):
        assert encode_item(("a", 1)) != encode_item(("a", 2))
        assert encode_item(("a", 1)) != encode_item(("a",))
        assert encode_item((("a",), 1)) != encode_item(("a", 1))

    def test_type_tags_separate_singletons(self):
        values = [None, True, False, 0, 1, ""]
        encodings = [encode_item(v) for v in values]
        assert len(set(encodings)) == len(values)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            encode_item([1, 2])

    def test_numpy_integers_accepted(self):
        assert encode_item(np.int64(42)) == 42

    @pytest.mark.parametrize(
        "scalar, python_value",
        [
            (np.int32(-7), -7),
            (np.uint64(2**63 + 11), 2**63 + 11),
            (np.float64(2.5), 2.5),
            (np.float32(0.0), 0.0),
            (np.bool_(True), True),
            (np.bool_(False), False),
            (np.str_("ab"), "ab"),
            (np.bytes_(b"ab"), b"ab"),
        ],
    )
    def test_numpy_scalars_match_python_counterparts(self, scalar, python_value):
        """Regression: numpy scalars used to take the ``int(...)`` branch
        only for exact ``int`` instances, so ``np.bool_`` / ``np.floating``
        hit the unsupported-type error and ``np.int32`` bypassed the
        type-tag normalization.  They must encode exactly like the Python
        value they wrap."""
        assert encode_item(scalar) == encode_item(python_value)

    def test_numpy_scalars_inside_tuples(self):
        assert encode_item((np.int64(1), np.str_("x"))) == encode_item((1, "x"))

    def test_string_and_bytes_differ_from_each_other(self):
        # Same byte content, different type path (str encodes via utf-8).
        assert encode_item("ab") == encode_item(b"ab")  # utf-8 identical
        assert encode_item("é") != encode_item("e")


class TestFamilies:
    @pytest.mark.parametrize("kind", ALL_FAMILIES)
    def test_deterministic_per_seed(self, kind):
        first = HashFamily(kind, seed=7).one()
        second = HashFamily(kind, seed=7).one()
        for item in ("x", 123, ("a", 4)):
            assert first(item) == second(item)

    @pytest.mark.parametrize("kind", ALL_FAMILIES)
    def test_different_seeds_differ(self, kind):
        first = HashFamily(kind, seed=1).one()
        second = HashFamily(kind, seed=2).one()
        disagreements = sum(first(i) != second(i) for i in range(64))
        assert disagreements > 60

    @pytest.mark.parametrize("kind", ALL_FAMILIES)
    def test_output_range(self, kind):
        function = HashFamily(kind, seed=3).one()
        for item in range(100):
            assert 0 <= function(item) <= MASK64

    @pytest.mark.parametrize("kind", ALL_FAMILIES)
    def test_hash_array_matches_scalar(self, kind):
        function = HashFamily(kind, seed=11).one()
        values = np.array([0, 1, 5, 1 << 40, MASK64], dtype=np.uint64)
        vectorized = function.hash_array(values)
        scalar = [function.mix(int(v)) for v in values]
        assert vectorized.tolist() == scalar

    @given(st.lists(st.integers(min_value=0, max_value=MASK64), min_size=1, max_size=30))
    def test_splitmix_array_matches_scalar_random(self, values):
        function = SplitMix64Hash(seed=5)
        array = np.array(values, dtype=np.uint64)
        assert function.hash_array(array).tolist() == [
            function.mix(v) for v in values
        ]

    def test_multiply_shift_has_odd_multiplier(self):
        assert MultiplyShiftHash(seed=0).a % 2 == 1

    def test_polynomial_degree_validation(self):
        with pytest.raises(ValueError):
            PolynomialHash(seed=0, degree=0)

    def test_polynomial_coefficient_count(self):
        assert len(PolynomialHash(seed=0, degree=4).coefficients) == 4

    def test_tabulation_table_shape(self):
        tables = TabulationHash(seed=0).tables
        assert len(tables) == 8
        assert all(len(table) == 256 for table in tables)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            HashFamily("md5")

    def test_spawn_count_validation(self):
        with pytest.raises(ValueError):
            HashFamily("splitmix").spawn(0)

    def test_spawned_functions_are_independent(self):
        functions = HashFamily("splitmix", seed=0).spawn(3)
        outputs = [f("probe") for f in functions]
        assert len(set(outputs)) == 3

    def test_low_bits_roughly_uniform(self):
        """The bitmap-routing bits (low 6) should be close to uniform."""
        function = HashFamily("splitmix", seed=9).one()
        buckets = np.zeros(64, dtype=int)
        samples = 64 * 200
        for item in range(samples):
            buckets[function(item) & 63] += 1
        expected = samples / 64
        chi_square = float(((buckets - expected) ** 2 / expected).sum())
        # 63 degrees of freedom; 120 is far beyond any plausible p-value cut.
        assert chi_square < 120


class TestEncodedArrays:
    def test_encode_items_matches_scalar(self):
        items = ["a", 5, ("x", 1)]
        array = encode_items(items)
        assert array.tolist() == [encode_item(i) for i in items]

    def test_combine_encoded_matches_tuple_encoding(self):
        lhs = np.array([1, 2, 3], dtype=np.uint64)
        rhs = np.array([10, 20, 30], dtype=np.uint64)
        combined = combine_encoded([lhs, rhs])
        expected = [encode_item((int(a), int(b))) for a, b in zip(lhs, rhs)]
        assert combined.tolist() == expected

    def test_combine_encoded_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_encoded([])

    def test_combine_is_order_sensitive(self):
        lhs = np.array([1], dtype=np.uint64)
        rhs = np.array([2], dtype=np.uint64)
        assert combine_encoded([lhs, rhs])[0] != combine_encoded([rhs, lhs])[0]
