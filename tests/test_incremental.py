"""Tests for incremental and sliding-window implication counting (§3.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.conditions import ImplicationConditions
from repro.core.estimator import ImplicationCountEstimator
from repro.core.incremental import (
    IncrementalImplicationCounter,
    SlidingWindowImplicationCounter,
)


def strict() -> ImplicationConditions:
    return ImplicationConditions(
        max_multiplicity=1, min_support=1, top_c=1, min_top_confidence=1.0
    )


def feed_phase(counter, prefix: str, count: int) -> None:
    """Feed ``count`` fresh one-to-one itemsets named with ``prefix``."""
    for index in range(count):
        counter.update(f"{prefix}-{index}", f"partner-{prefix}-{index}")


class TestIncremental:
    def test_increment_counts_new_itemsets(self):
        counter = IncrementalImplicationCounter(
            ImplicationCountEstimator(strict(), seed=1)
        )
        feed_phase(counter, "early", 400)
        at_t1 = counter.checkpoint("t1")
        feed_phase(counter, "late", 400)
        increment = counter.increment_since("t1")
        assert at_t1 > 0
        # ~400 new implying itemsets appeared; allow sketch error.
        assert 200 < increment < 700

    def test_tuples_since(self):
        counter = IncrementalImplicationCounter(
            ImplicationCountEstimator(strict(), seed=1)
        )
        feed_phase(counter, "a", 10)
        counter.checkpoint("mark")
        feed_phase(counter, "b", 25)
        assert counter.tuples_since("mark") == 25

    def test_unknown_checkpoint(self):
        counter = IncrementalImplicationCounter(
            ImplicationCountEstimator(strict(), seed=1)
        )
        with pytest.raises(KeyError):
            counter.increment_since("never")
        with pytest.raises(KeyError):
            counter.tuples_since("never")

    def test_clamping(self):
        counter = IncrementalImplicationCounter(
            ImplicationCountEstimator(strict(), seed=1)
        )
        feed_phase(counter, "x", 300)
        counter.checkpoint("t1")
        # Violate many previously-good itemsets: the count *drops*.
        for index in range(300):
            counter.update(f"x-{index}", "second-partner")
        assert counter.increment_since("t1") == 0.0
        assert counter.increment_since("t1", clamp=False) < 0.0

    def test_drop_checkpoint(self):
        counter = IncrementalImplicationCounter(
            ImplicationCountEstimator(strict(), seed=1)
        )
        counter.checkpoint("gone")
        counter.drop_checkpoint("gone")
        with pytest.raises(KeyError):
            counter.increment_since("gone")


class TestSlidingWindow:
    def test_validation(self):
        template = ImplicationCountEstimator(strict(), seed=1)
        with pytest.raises(ValueError):
            SlidingWindowImplicationCounter(template, window=0)
        with pytest.raises(ValueError):
            SlidingWindowImplicationCounter(template, window=10, panes=11)

    def test_old_contributions_retire(self):
        """Itemsets from long ago must leave the windowed count."""
        template = ImplicationCountEstimator(strict(), seed=2)
        window = SlidingWindowImplicationCounter(template, window=1000, panes=4)
        feed_phase(window, "old", 500)
        count_after_burst = window.implication_count()
        assert count_after_burst > 100
        # Push the burst far out of the window with unrelated repeats of a
        # single itemset (contributes at most 1 to any count).
        for _ in range(3000):
            window.update("filler", "filler-partner")
        assert window.implication_count() <= count_after_burst / 3

    def test_live_pane_count_is_bounded(self):
        template = ImplicationCountEstimator(strict(), seed=3)
        window = SlidingWindowImplicationCounter(template, window=400, panes=4)
        feed_phase(window, "stream", 2500)
        assert window.live_panes <= 4 + 2

    def test_window_sees_recent_itemsets(self):
        template = ImplicationCountEstimator(strict(), seed=4)
        window = SlidingWindowImplicationCounter(template, window=800, panes=4)
        for _ in range(2000):
            window.update("warmup", "warmup-partner")
        feed_phase(window, "recent", 400)
        assert window.implication_count() > 100

    def test_batch_matches_scalar_rotation(self):
        conditions = strict()
        scalar = SlidingWindowImplicationCounter(
            ImplicationCountEstimator(conditions, num_bitmaps=16, seed=5),
            window=300,
            panes=3,
        )
        batch = SlidingWindowImplicationCounter(
            ImplicationCountEstimator(conditions, num_bitmaps=16, seed=5),
            window=300,
            panes=3,
        )
        rng = np.random.default_rng(6)
        lhs = rng.integers(0, 200, size=1200).astype(np.uint64)
        rhs = (lhs * np.uint64(31)) & np.uint64(0xFFFF)  # one partner per item
        for a, b in zip(lhs.tolist(), rhs.tolist()):
            scalar.update(a, b)
        batch.update_batch(lhs, rhs)
        assert scalar.clock == batch.clock
        assert scalar.live_panes == batch.live_panes
        assert scalar.implication_count() == batch.implication_count()

    def test_all_estimates_exposed(self):
        template = ImplicationCountEstimator(strict(), seed=7)
        window = SlidingWindowImplicationCounter(template, window=100, panes=2)
        feed_phase(window, "z", 50)
        assert window.supported_distinct_count() >= 0
        assert window.nonimplication_count() >= 0
