"""Kernel-layer tests: backend selection, fallback, and bit-for-bit parity.

The compiled backend is a C replay of the python reference (DESIGN.md
§11).  These tests pin the selection machinery (argument > environment >
auto), the fallback paths (no compiler, unrepresentable state), the
dtype-coercion contract of ``hash_array``, the C polynomial-hash parity,
and the schema-v2 benchmark artifact reader/writer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.conditions import ImplicationConditions
from repro.core.estimator import ImplicationCountEstimator
from repro.core.serialize import estimator_state_digest
from repro.datasets.synthetic import generate_dataset_one
from repro.experiments import (
    bench_host_metadata,
    read_throughput_artifact,
    write_throughput_artifact,
)
from repro.kernels import compiled as compiled_module
from repro.kernels import (
    KernelUnavailableError,
    available_backends,
    resolve,
)
from repro.observability import MetricsRegistry, set_registry
from repro.sketch.hashing import HashFamily, coerce_encoded
from repro.verify.harness import DifferentialHarness

COMPILED_AVAILABLE = "compiled" in available_backends()

needs_compiled = pytest.mark.skipif(
    not COMPILED_AVAILABLE, reason="compiled kernel backend unavailable"
)


@pytest.fixture
def registry():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


def small_stream():
    data = generate_dataset_one(200, 100, c=2, seed=7)
    return data.conditions, data.lhs, data.rhs


class TestBackendResolution:
    def test_python_always_available(self):
        assert available_backends()[0] == "python"
        assert resolve("python").name == "python"
        assert not resolve("python").is_compiled

    def test_auto_prefers_compiled_when_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        resolved = resolve(None)
        if COMPILED_AVAILABLE:
            assert resolved.name == "compiled"
        else:
            assert resolved.name == "python"

    def test_env_var_forces_python(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "python")
        assert resolve(None).name == "python"
        estimator = ImplicationCountEstimator(ImplicationConditions())
        assert estimator.kernels.name == "python"

    def test_argument_beats_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "python")
        if COMPILED_AVAILABLE:
            assert resolve("compiled").name == "compiled"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve("fortran")

    def test_explicit_compiled_raises_when_unbuildable(self, monkeypatch):
        def refuse():
            raise compiled_module.KernelBuildError("no compiler (test)")

        monkeypatch.setattr(compiled_module, "load_library", refuse)
        with pytest.raises(KernelUnavailableError):
            resolve("compiled")

    def test_auto_falls_back_when_unbuildable(self, monkeypatch, registry):
        def refuse():
            raise compiled_module.KernelBuildError("no compiler (test)")

        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        monkeypatch.setattr(compiled_module, "load_library", refuse)
        assert resolve(None).name == "python"
        assert registry.counter("kernels.fallbacks").value >= 1


class TestColdStartFallback:
    """A host without the compiled backend still verifies clean."""

    def test_verify_smoke_with_compiled_unbuildable(self, monkeypatch):
        def refuse():
            raise compiled_module.KernelBuildError("no compiler (test)")

        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        monkeypatch.setattr(compiled_module, "load_library", refuse)
        assert available_backends() == ("python",)
        report = DifferentialHarness(
            base_seed=3, iterations=6, stream_size=96
        ).run()
        assert report.ok, [v.describe() for v in report.violations]

    def test_verify_smoke_with_env_forced_python(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "python")
        report = DifferentialHarness(
            base_seed=4, iterations=6, stream_size=96
        ).run()
        assert report.ok, [v.describe() for v in report.violations]


@needs_compiled
class TestCompiledEquivalence:
    def test_digest_matches_python_all_paths(self):
        conditions, lhs, rhs = small_stream()
        for aggregate in (False, True):
            for grouped in (False, True):
                states = {}
                for backend in ("python", "compiled"):
                    estimator = ImplicationCountEstimator(
                        conditions, num_bitmaps=16, seed=3, kernels=backend
                    )
                    estimator.update_batch(
                        lhs, rhs, aggregate=aggregate, grouped=grouped
                    )
                    states[backend] = estimator_state_digest(estimator)
                assert states["python"] == states["compiled"], (
                    aggregate,
                    grouped,
                )

    def test_sequential_batches_round_trip_state(self):
        """Multi-batch ingest exercises the C engine's state import."""
        conditions, lhs, rhs = small_stream()
        python = ImplicationCountEstimator(conditions, seed=1, kernels="python")
        compiled = ImplicationCountEstimator(
            conditions, seed=1, kernels="compiled"
        )
        for begin, end in ((0, 400), (400, 1000), (1000, len(lhs))):
            python.update_batch(lhs[begin:end], rhs[begin:end])
            compiled.update_batch(lhs[begin:end], rhs[begin:end])
        assert estimator_state_digest(python) == estimator_state_digest(
            compiled
        )

    def test_unrepresentable_state_falls_back(self, registry):
        """Scalar-API string itemsets cannot ride the flat C encoding;
        the batch after them must silently take the python path — same
        digest as a pure-python twin, fallback counter bumped."""
        conditions, lhs, rhs = small_stream()
        compiled = ImplicationCountEstimator(
            conditions, seed=1, kernels="compiled"
        )
        python = ImplicationCountEstimator(conditions, seed=1, kernels="python")
        for estimator in (compiled, python):
            estimator.update("itemset-a", "partner-1")
            estimator.update("itemset-a", "partner-1")
        compiled.update_batch(lhs, rhs)
        python.update_batch(lhs, rhs)
        assert estimator_state_digest(compiled) == estimator_state_digest(
            python
        )
        assert registry.counter("kernels.fallbacks").value >= 1

    def test_backend_gauge_reported(self, registry):
        conditions, lhs, rhs = small_stream()
        estimator = ImplicationCountEstimator(
            conditions, seed=1, kernels="compiled"
        )
        estimator.update_batch(lhs, rhs)
        assert registry.gauge("kernels.backend").value == 1.0
        estimator = ImplicationCountEstimator(
            conditions, seed=1, kernels="python"
        )
        estimator.update_batch(lhs, rhs)
        assert registry.gauge("kernels.backend").value == 0.0


@needs_compiled
class TestPolynomialKernel:
    def test_matches_numpy_path(self, monkeypatch):
        hash_function = HashFamily("polynomial", seed=17).one()
        values = (
            np.arange(1, 5000, dtype=np.uint64)
            * np.uint64(0x9E3779B97F4A7C15)
        )
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        compiled_out = hash_function.hash_array(values)
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "python")
        numpy_out = hash_function.hash_array(values)
        assert np.array_equal(compiled_out, numpy_out)

    def test_matches_scalar_mix(self):
        hash_function = HashFamily("polynomial", seed=23).one()
        values = np.array([0, 1, 2**61 - 2, 2**61 - 1, 2**64 - 1], dtype=np.uint64)
        hashed = hash_function.hash_array(values)
        for value, output in zip(values.tolist(), hashed.tolist()):
            assert hash_function.mix(value) == output


class TestDtypeCoercion:
    """The ``hash_array`` dtype-width contract (satellite fix)."""

    def test_narrow_ints_upcast_like_scalar(self):
        hash_function = HashFamily("splitmix", seed=5).one()
        for dtype in (np.uint8, np.uint16, np.uint32, np.int64, np.int32):
            values = np.array([0, 1, 100, 126], dtype=dtype)
            hashed = hash_function.hash_array(values)
            expected = [hash_function.mix(int(v) & (2**64 - 1)) for v in values.tolist()]
            assert hashed.tolist() == expected, dtype

    def test_negative_ints_match_scalar_wrap(self):
        hash_function = HashFamily("splitmix", seed=5).one()
        values = np.array([-1, -1000], dtype=np.int32)
        hashed = hash_function.hash_array(values)
        expected = [hash_function(-1), hash_function(-1000)]
        assert hashed.tolist() == expected

    @pytest.mark.parametrize("family", ["splitmix", "polynomial", "tabulation"])
    def test_float_input_rejected(self, family):
        hash_function = HashFamily(family, seed=5).one()
        with pytest.raises(TypeError, match="encode_items"):
            hash_function.hash_array(np.array([1.5, 2.0]))

    def test_bool_input_rejected(self):
        hash_function = HashFamily("splitmix", seed=5).one()
        with pytest.raises(TypeError, match="encode_items"):
            hash_function.hash_array(np.array([True, False]))

    def test_update_batch_rejects_floats(self):
        estimator = ImplicationCountEstimator(ImplicationConditions())
        with pytest.raises(TypeError, match="encode_items"):
            estimator.update_batch(
                np.array([1.0, 2.0]), np.array([1, 2], dtype=np.uint64)
            )

    def test_coerce_passthrough_is_zero_copy(self):
        values = np.array([1, 2, 3], dtype=np.uint64)
        assert coerce_encoded(values) is values


class TestBenchArtifactSchema:
    """Schema v2 (entries + host metadata) with the v1 reader shim."""

    def test_host_metadata_shape(self):
        host = bench_host_metadata()
        assert host["cores"] >= 1
        assert len(host["hostname_sha256"]) == 16
        assert host["kernel_backend"] in ("python", "compiled")
        assert host["timestamp"].endswith("Z")

    def test_write_then_read_round_trip(self, tmp_path):
        target = tmp_path / "bench.json"
        entries = {"batch": 123.0, "scalar": 45.0}
        payload = write_throughput_artifact(target, entries, "python")
        loaded = read_throughput_artifact(target)
        assert loaded == payload
        assert loaded["schema"] == 2
        assert loaded["entries"] == entries
        assert loaded["host"]["kernel_backend"] == "python"

    def test_v1_flat_artifact_shim(self, tmp_path):
        target = tmp_path / "bench.json"
        target.write_text('{"scalar": 674431.2, "batch": 3021510.4}\n')
        loaded = read_throughput_artifact(target)
        assert loaded["schema"] == 1
        assert loaded["host"] == {}
        assert loaded["entries"]["scalar"] == 674431.2

    def test_malformed_artifact_rejected(self, tmp_path):
        target = tmp_path / "bench.json"
        target.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="malformed"):
            read_throughput_artifact(target)


@needs_compiled
class TestBuildCache:
    def test_source_digest_keys_cache(self):
        digest = compiled_module._source_digest()
        assert len(digest) == 64
        cache = compiled_module._cache_dir() / digest[:16] / "repro_kernels.so"
        assert cache.exists()

    def test_engine_rejects_absurd_geometry(self):
        """The C engine refuses geometry outside its guards; the caller
        falls back to python rather than crashing."""
        lib = compiled_module.load_library()
        assert not lib.repro_engine_new(0, 64, 6, 4, 2, 1, -1, -1, 1, 0.0)
        assert not lib.repro_engine_new(8, 65, 3, 4, 2, 1, -1, -1, 1, 0.0)
        assert not lib.repro_engine_new(8, 64, 3, 4, 0, 1, -1, -1, 1, 0.0)
