"""Tests for the Table 1 relation and the network-traffic generator."""

from __future__ import annotations

import pytest

from repro.baselines.exact import ExactImplicationCounter
from repro.core.conditions import ImplicationConditions
from repro.datasets.network import (
    NETWORK_SCHEMA,
    NetworkTrafficGenerator,
    ScenarioEvent,
    table1_relation,
)


class TestTable1:
    def test_eight_tuples(self):
        relation = table1_relation()
        assert len(relation) == 8
        assert relation.schema is NETWORK_SCHEMA

    def test_first_and_last_rows_match_paper(self):
        relation = table1_relation()
        assert relation.rows[0] == ("S1", "D2", "WWW", "Morning")
        assert relation.rows[-1] == ("S3", "D3", "P2P", "Night")

    def test_cardinalities(self):
        relation = table1_relation()
        assert relation.distinct(["source"]) == {("S1",), ("S2",), ("S3",)}
        assert relation.distinct(["destination"]) == {("D1",), ("D2",), ("D3",)}
        # Section 3.1: compound cardinality of {Source, Destination} is 9.
        assert relation.compound_cardinality(["source", "destination"]) == 9

    def test_s1_d3_support_is_four(self):
        """Section 3.1: itemset (S1, D3) has support 4 and multiplicity 2
        with respect to Service."""
        relation = table1_relation()
        pairs = list(relation.project(["source", "destination"]))
        assert pairs.count(("S1", "D3")) == 4
        services = {
            row[2] for row in relation if (row[0], row[1]) == ("S1", "D3")
        }
        assert services == {"WWW", "P2P"}


class TestScenarioEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioEvent("meteor", 0, 10)
        with pytest.raises(ValueError):
            ScenarioEvent("ddos", -1, 10)
        with pytest.raises(ValueError):
            ScenarioEvent("ddos", 0, 0)
        with pytest.raises(ValueError):
            ScenarioEvent("ddos", 0, 10, intensity=0.0)

    def test_active_window(self):
        event = ScenarioEvent("ddos", start=10, duration=5)
        assert not event.active_at(9)
        assert event.active_at(10)
        assert event.active_at(14)
        assert not event.active_at(15)


class TestGenerator:
    def test_deterministic(self):
        first = list(NetworkTrafficGenerator(seed=3).tuples(100))
        second = list(NetworkTrafficGenerator(seed=3).tuples(100))
        assert first == second

    def test_schema_shape(self):
        for row in NetworkTrafficGenerator(seed=1).tuples(50):
            assert len(row) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkTrafficGenerator(num_sources=0)

    def test_ddos_raises_one_to_many_signal(self):
        """During a DDoS the victim destinations are contacted by many
        spoofed sources: the 'destinations contacted by more than N
        sources' complement count must fire."""
        event = ScenarioEvent(
            "ddos",
            start=500,
            duration=3000,
            intensity=0.9,
            target="D-victim",
            spread=10,
            pool=500,
        )
        conditions = ImplicationConditions(max_multiplicity=20, min_support=1)
        quiet = ExactImplicationCounter(conditions)
        attacked = ExactImplicationCounter(conditions)
        for counter, generator in (
            (quiet, NetworkTrafficGenerator(seed=5)),
            (attacked, NetworkTrafficGenerator(seed=5, events=[event])),
        ):
            for source, destination, __, __t in generator.tuples(4000):
                counter.update((destination,), (source,))
        assert attacked.status_of(("D-victim-0",)).value == "violated"
        assert (
            attacked.nonimplication_count()
            >= quiet.nonimplication_count() + event.spread * 0.8
        )

    def test_port_scan_raises_source_fanout(self):
        event = ScenarioEvent(
            "port_scan",
            start=0,
            duration=3500,
            intensity=0.8,
            target="S-scanner",
            spread=5,
            pool=2000,
        )
        conditions = ImplicationConditions(max_multiplicity=50, min_support=1)
        counter = ExactImplicationCounter(conditions)
        generator = NetworkTrafficGenerator(seed=7, events=[event])
        for source, destination, __, __t in generator.tuples(4000):
            counter.update((source,), (destination,))
        assert counter.status_of(("S-scanner-0",)).value == "violated"

    def test_relation_materialization(self):
        relation = NetworkTrafficGenerator(seed=2).relation(25)
        assert len(relation) == 25
