"""Cross-module integration tests for paths no single-module test covers:
flash crowds, serialized-after-merge sketches, sketch-backed one-to-many
queries, incremental counting through the batch path, and the distributed
layer composed with the trigger framework.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AggregationTree,
    BaselineTrigger,
    ImplicationConditions,
    ImplicationCountEstimator,
    ImplicationQuery,
    IncrementalImplicationCounter,
    QueryEngine,
    StreamNode,
    TriggerBoard,
)
from repro.baselines.exact import ExactImplicationCounter
from repro.datasets.network import NetworkTrafficGenerator, ScenarioEvent
from repro.datasets.synthetic import generate_dataset_one


class TestFlashCrowd:
    def test_flash_crowd_detected_like_ddos(self):
        """A flash crowd has the same fan-in signature as a DDoS (the paper
        treats them together) and is WWW-only traffic."""
        event = ScenarioEvent(
            "flash_crowd",
            start=200,
            duration=2500,
            intensity=0.9,
            target="D-olympics",
            spread=5,
            pool=800,
        )
        conditions = ImplicationConditions(max_multiplicity=25, min_support=1)
        counter = ExactImplicationCounter(conditions)
        services = set()
        for source, destination, service, __ in NetworkTrafficGenerator(
            seed=3, events=[event]
        ).tuples(3000):
            counter.update((destination,), (source,))
            if destination.startswith("D-olympics"):
                services.add(service)
        assert counter.status_of(("D-olympics-0",)).value == "violated"
        assert services == {"WWW"}


class TestSerializedMerge:
    def test_merge_then_serialize_then_merge_again(self):
        """A mid-tree aggregator serializes its partial merge; the upper
        level must be able to continue merging into it."""
        data = generate_dataset_one(400, 200, c=1, seed=11)
        template = ImplicationCountEstimator(data.conditions, seed=12)
        shards = [template.spawn_sibling() for _ in range(4)]
        shard_of = (data.lhs % np.uint64(4)).astype(np.int64)
        for index, shard in enumerate(shards):
            mask = shard_of == index
            shard.update_batch(data.lhs[mask], data.rhs[mask])

        # Level 1: merge shards 0+1 and 2+3, ship as bytes.
        left = template.spawn_sibling().merge(shards[0]).merge(shards[1])
        right = template.spawn_sibling().merge(shards[2]).merge(shards[3])
        left_wire = ImplicationCountEstimator.from_bytes(left.to_bytes())
        right_wire = ImplicationCountEstimator.from_bytes(right.to_bytes())

        # Level 2: root merge of deserialized partials.
        root = template.spawn_sibling().merge(left_wire).merge(right_wire)
        direct = template.spawn_sibling()
        for shard in shards:
            direct.merge(shard)
        assert root.implication_count() == direct.implication_count()
        assert root.nonimplication_count() == direct.nonimplication_count()
        assert root.tuples_seen == len(data.lhs)


class TestSketchBackedOneToMany:
    def test_complement_count_through_engine(self):
        from repro.stream.schema import Relation, Schema

        schema = Schema(["src", "dst"])
        rows = []
        # 400 quiet sources with 1 destination, 300 scanners with 4.
        for source in range(400):
            rows.append((("s", source), ("d", source)))
        for scanner in range(300):
            for probe in range(4):
                rows.append((("scan", scanner), ("d", scanner, probe)))
        engine = QueryEngine(schema, backend="sketch", seed=4, fringe_size=8)
        name = engine.register(
            ImplicationQuery.one_to_many(["src"], ["dst"], more_than=2)
        )
        engine.process_rows(Relation(schema, rows))
        assert engine.result(name) == pytest.approx(300, rel=0.4)


class TestIncrementalBatchPath:
    def test_checkpoints_across_batch_updates(self):
        data_a = generate_dataset_one(300, 150, c=1, seed=21)
        counter = IncrementalImplicationCounter(
            ImplicationCountEstimator(data_a.conditions, seed=22)
        )
        counter.update_batch(data_a.lhs, data_a.rhs)
        counter.checkpoint("after-first")
        # A second, disjoint population (shift the ids far away).
        data_b = generate_dataset_one(300, 150, c=1, seed=23)
        counter.update_batch(
            data_b.lhs + np.uint64(1 << 20), data_b.rhs + np.uint64(1 << 21)
        )
        increment = counter.increment_since("after-first")
        assert increment == pytest.approx(150, rel=0.5)
        assert counter.tuples_since("after-first") == len(data_b.lhs)


class TestDistributedTriggers:
    def test_root_statistic_drives_a_trigger(self):
        conditions = ImplicationConditions(max_multiplicity=3, min_support=1)
        template = ImplicationCountEstimator(
            conditions, num_bitmaps=32, fringe_size=8, seed=31
        )
        nodes = [StreamNode(f"n{i}", template) for i in range(4)]
        tree = AggregationTree(template, nodes, fanout=2)

        latest_root = {"count": 0.0}

        def root_statistic() -> float:
            return latest_root["count"]

        board = TriggerBoard(
            [BaselineTrigger("fanin", root_statistic, jump=100, arm_at=1)]
        )
        # Quiet phase.
        for item in range(200):
            nodes[item % 4].observe(("d", item), ("s", item))
        latest_root["count"] = tree.sync().nonimplication_count()
        board.poll(1)  # arms with the quiet baseline
        assert board.raised() == []
        # Attack spread across all nodes.
        for victim in range(250):
            for source in range(5):
                nodes[source % 4].observe(("victim", victim), ("atk", source))
        latest_root["count"] = tree.sync().nonimplication_count()
        events = board.poll(2)
        assert [event.kind for event in events] == ["raised"]
