"""Fault-tolerance tests for the sharded ingest engine.

The injectable failure mechanisms (``REPRO_SHARD_FAILURE`` env var and the
``failure_hook`` constructor arg) let these tests kill chosen shard workers
deterministically and assert the retry contract: only the failed shards are
re-ingested, and the merged estimator is bit-for-bit identical to a run
where nothing failed.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.core.estimator import ImplicationCountEstimator
from repro.datasets.synthetic import generate_dataset_one
from repro.engine import ShardedIngestor, ShardFailure, available_workers
from repro.engine import sharded as sharded_module
from repro.observability import MetricsRegistry, set_registry


def _pool_available() -> bool:
    try:
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=1) as pool:
            pool.map(abs, [1])
        return True
    except (ValueError, OSError, RuntimeError):
        return False


POOL_AVAILABLE = _pool_available()


# Hooks must be module-level: shard jobs (hook included) are pickled into
# the pool's task queue.
def _kill_shard_one_first_attempt(shard_index: int, attempt: int) -> None:
    if shard_index == 1 and attempt == 0:
        raise RuntimeError("injected worker death (shard 1)")


def _kill_shard_zero_always(shard_index: int, attempt: int) -> None:
    if shard_index == 0:
        raise RuntimeError("injected repeated worker death (shard 0)")


def _hang_shard_zero_first_attempt(shard_index: int, attempt: int) -> None:
    if shard_index == 0 and attempt == 0:
        time.sleep(30.0)


@pytest.fixture()
def registry():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


def make_stream(seed: int = 11):
    data = generate_dataset_one(400, 200, c=1, seed=seed)
    template = ImplicationCountEstimator(data.conditions, seed=seed)
    return data, template


class TestValidation:
    def test_workers_must_be_positive(self):
        __, template = make_stream()
        with pytest.raises(ValueError):
            ShardedIngestor(template, workers=0)

    def test_job_timeout_must_be_positive(self):
        __, template = make_stream()
        with pytest.raises(ValueError):
            ShardedIngestor(template, workers=2, job_timeout=0)


class TestPoolSizing:
    def test_pool_capped_at_available_workers(self, monkeypatch):
        """More shards than cores must not spawn one process per shard."""
        __, template = make_stream()
        ingestor = ShardedIngestor(template, workers=64)
        monkeypatch.setattr(sharded_module, "available_workers", lambda: 2)
        assert ingestor._pool_processes(64) == 2
        assert ingestor._pool_processes(1) == 1

    def test_pool_cap_does_not_change_results(self, monkeypatch):
        """The split depends on the shard count only, so queueing shards on
        a smaller pool (workers >> cores) must be bit-for-bit neutral."""
        data, template = make_stream(seed=21)
        ingestor = ShardedIngestor(template, workers=6)
        wide = ingestor.ingest(data.lhs, data.rhs)
        monkeypatch.setattr(sharded_module, "available_workers", lambda: 1)
        narrow = ingestor.ingest(data.lhs, data.rhs)
        assert narrow.to_bytes() == wide.to_bytes()


class TestInjectedFailures:
    def test_env_var_failure_retries_bit_for_bit(self, monkeypatch, registry):
        """Acceptance: shard N killed once -> retry -> identical result."""
        data, template = make_stream(seed=13)
        ingestor = ShardedIngestor(template, workers=3)
        monkeypatch.delenv(sharded_module.FAILURE_ENV, raising=False)
        clean = ingestor.ingest(data.lhs, data.rhs)
        monkeypatch.setenv(sharded_module.FAILURE_ENV, "1")
        recovered = ingestor.ingest(data.lhs, data.rhs)
        assert recovered.to_bytes() == clean.to_bytes()
        assert registry.counter("sharded.shard_retries").value == 1
        assert registry.counter("sharded.shard_failures").value == 1

    def test_every_shard_failing_once_still_completes(self, monkeypatch, registry):
        data, template = make_stream(seed=17)
        ingestor = ShardedIngestor(template, workers=3)
        monkeypatch.delenv(sharded_module.FAILURE_ENV, raising=False)
        clean = ingestor.ingest(data.lhs, data.rhs)
        monkeypatch.setenv(sharded_module.FAILURE_ENV, "0,1,2")
        recovered = ingestor.ingest(data.lhs, data.rhs)
        assert recovered.to_bytes() == clean.to_bytes()
        assert registry.counter("sharded.shard_retries").value == 3

    def test_failure_hook_retries_bit_for_bit(self, registry):
        data, template = make_stream(seed=19)
        clean = ShardedIngestor(template, workers=2).ingest(data.lhs, data.rhs)
        flaky = ShardedIngestor(
            template, workers=2, failure_hook=_kill_shard_one_first_attempt
        )
        recovered = flaky.ingest(data.lhs, data.rhs)
        assert recovered.to_bytes() == clean.to_bytes()
        assert registry.counter("sharded.shard_retries").value == 1

    def test_second_failure_is_terminal(self):
        data, template = make_stream(seed=23)
        doomed = ShardedIngestor(
            template, workers=2, failure_hook=_kill_shard_zero_always
        )
        with pytest.raises(ShardFailure, match="failed twice"):
            doomed.ingest(data.lhs, data.rhs)

    def test_only_failed_shard_is_retried(self, monkeypatch, registry):
        """The healthy shards' pool results are kept, not recomputed."""
        data, template = make_stream(seed=29)
        ingestor = ShardedIngestor(template, workers=4)
        monkeypatch.setenv(sharded_module.FAILURE_ENV, "2")
        ingestor.ingest(data.lhs, data.rhs)
        # 4 shards attempted, exactly one retried: 5 completed jobs total
        # would each have recorded a wall-time observation, but the killed
        # attempt died before ingesting, so exactly 4 observations exist.
        assert registry.histogram("sharded.shard_seconds").count == 4
        assert registry.counter("sharded.shard_retries").value == 1

    @pytest.mark.skipif(
        not POOL_AVAILABLE, reason="no process pool in this environment"
    )
    def test_hung_worker_times_out_and_retries(self, registry):
        """A worker sleeping past job_timeout is declared dead; the shard
        re-ingests serially and the run completes."""
        data, template = make_stream(seed=31)
        clean = ShardedIngestor(template, workers=2).ingest(data.lhs, data.rhs)
        hung = ShardedIngestor(
            template,
            workers=2,
            job_timeout=1.0,
            failure_hook=_hang_shard_zero_first_attempt,
        )
        started = time.perf_counter()
        recovered = hung.ingest(data.lhs, data.rhs)
        elapsed = time.perf_counter() - started
        assert recovered.to_bytes() == clean.to_bytes()
        # On a single-core pool the sleeper also blocks the healthy shard
        # past its deadline, so up to both shards may retry serially.
        assert registry.counter("sharded.shard_retries").value >= 1
        # The 30s sleeper must have been abandoned, not waited out.
        assert elapsed < 15.0


class TestSingleWorkerPath:
    def test_serial_ingest_also_retries(self, monkeypatch, registry):
        """workers=1 runs in-process but honours the same retry contract."""
        data, template = make_stream(seed=37)
        ingestor = ShardedIngestor(template, workers=1)
        monkeypatch.delenv(sharded_module.FAILURE_ENV, raising=False)
        clean = ingestor.ingest(data.lhs, data.rhs)
        monkeypatch.setenv(sharded_module.FAILURE_ENV, "0")
        recovered = ingestor.ingest(data.lhs, data.rhs)
        assert recovered.to_bytes() == clean.to_bytes()
        assert registry.counter("sharded.shard_retries").value == 1
