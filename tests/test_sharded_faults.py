"""Fault-tolerance tests for the sharded ingest engine.

The injectable failure mechanisms (``REPRO_SHARD_FAILURE`` env var and the
``failure_hook`` constructor arg) let these tests kill chosen shard workers
deterministically and assert the retry contract: only the failed shards are
re-ingested, and the merged estimator is bit-for-bit identical to a run
where nothing failed.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.shared_memory
import os
import signal
import time

import numpy as np
import pytest

from repro.core.conditions import ImplicationConditions
from repro.core.estimator import ImplicationCountEstimator
from repro.core.serialize import estimator_state_digest
from repro.datasets.synthetic import generate_dataset_one
from repro.engine import ShardedIngestor, ShardFailure, available_workers
from repro.engine import pool as pool_module
from repro.engine import sharded as sharded_module
from repro.engine import workers as workers_module
from repro.kernels import available_backends
from repro.observability import MetricsRegistry, set_registry
from repro.verify.streams import generate_stream


def _pool_available() -> bool:
    try:
        context = multiprocessing.get_context("fork")
        with context.Pool(processes=1) as pool:
            pool.map(abs, [1])
        return True
    except (ValueError, OSError, RuntimeError):
        return False


POOL_AVAILABLE = _pool_available()


# Hooks must be module-level: shard jobs (hook included) are pickled into
# the pool's task queue.
def _kill_shard_one_first_attempt(shard_index: int, attempt: int) -> None:
    if shard_index == 1 and attempt == 0:
        raise RuntimeError("injected worker death (shard 1)")


def _kill_shard_zero_always(shard_index: int, attempt: int) -> None:
    if shard_index == 0:
        raise RuntimeError("injected repeated worker death (shard 0)")


def _hang_shard_zero_first_attempt(shard_index: int, attempt: int) -> None:
    if shard_index == 0 and attempt == 0:
        time.sleep(30.0)


def _sigkill_worker_on_shard_one(shard_index: int, attempt: int) -> None:
    """SIGKILL the *worker process* handling shard 1's first attempt.

    Guarded by ``in_worker()`` so the serial in-parent retry of the same
    shard (and the use_pool=False reference leg) survives the hook.
    """
    if shard_index == 1 and attempt == 0 and workers_module.in_worker():
        os.kill(os.getpid(), signal.SIGKILL)


def _stagger_shards_inverse(shard_index: int, attempt: int) -> None:
    """Make later shards finish *first* (arrival order != shard order)."""
    time.sleep(0.05 * max(2 - shard_index, 0))


@pytest.fixture()
def registry():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


def make_stream(seed: int = 11):
    data = generate_dataset_one(400, 200, c=1, seed=seed)
    template = ImplicationCountEstimator(data.conditions, seed=seed)
    return data, template


class TestValidation:
    def test_workers_must_be_positive(self):
        __, template = make_stream()
        with pytest.raises(ValueError):
            ShardedIngestor(template, workers=0)

    def test_job_timeout_must_be_positive(self):
        __, template = make_stream()
        with pytest.raises(ValueError):
            ShardedIngestor(template, workers=2, job_timeout=0)


class TestPoolSizing:
    def test_pool_capped_at_available_workers(self, monkeypatch):
        """More shards than cores must not spawn one process per shard."""
        __, template = make_stream()
        ingestor = ShardedIngestor(template, workers=64)
        monkeypatch.setattr(sharded_module, "available_workers", lambda: 2)
        assert ingestor._pool_processes(64) == 2
        assert ingestor._pool_processes(1) == 1

    def test_pool_cap_does_not_change_results(self, monkeypatch):
        """The split depends on the shard count only, so queueing shards on
        a smaller pool (workers >> cores) must be bit-for-bit neutral."""
        data, template = make_stream(seed=21)
        ingestor = ShardedIngestor(template, workers=6)
        wide = ingestor.ingest(data.lhs, data.rhs)
        monkeypatch.setattr(sharded_module, "available_workers", lambda: 1)
        narrow = ingestor.ingest(data.lhs, data.rhs)
        assert narrow.to_bytes() == wide.to_bytes()


class TestInjectedFailures:
    def test_env_var_failure_retries_bit_for_bit(self, monkeypatch, registry):
        """Acceptance: shard N killed once -> retry -> identical result."""
        data, template = make_stream(seed=13)
        ingestor = ShardedIngestor(template, workers=3)
        monkeypatch.delenv(sharded_module.FAILURE_ENV, raising=False)
        clean = ingestor.ingest(data.lhs, data.rhs)
        monkeypatch.setenv(sharded_module.FAILURE_ENV, "1")
        recovered = ingestor.ingest(data.lhs, data.rhs)
        assert recovered.to_bytes() == clean.to_bytes()
        assert registry.counter("sharded.shard_retries").value == 1
        assert registry.counter("sharded.shard_failures").value == 1

    def test_every_shard_failing_once_still_completes(self, monkeypatch, registry):
        data, template = make_stream(seed=17)
        ingestor = ShardedIngestor(template, workers=3)
        monkeypatch.delenv(sharded_module.FAILURE_ENV, raising=False)
        clean = ingestor.ingest(data.lhs, data.rhs)
        monkeypatch.setenv(sharded_module.FAILURE_ENV, "0,1,2")
        recovered = ingestor.ingest(data.lhs, data.rhs)
        assert recovered.to_bytes() == clean.to_bytes()
        assert registry.counter("sharded.shard_retries").value == 3

    def test_failure_hook_retries_bit_for_bit(self, registry):
        data, template = make_stream(seed=19)
        clean = ShardedIngestor(template, workers=2).ingest(data.lhs, data.rhs)
        flaky = ShardedIngestor(
            template, workers=2, failure_hook=_kill_shard_one_first_attempt
        )
        recovered = flaky.ingest(data.lhs, data.rhs)
        assert recovered.to_bytes() == clean.to_bytes()
        assert registry.counter("sharded.shard_retries").value == 1

    def test_second_failure_is_terminal(self):
        data, template = make_stream(seed=23)
        doomed = ShardedIngestor(
            template, workers=2, failure_hook=_kill_shard_zero_always
        )
        with pytest.raises(ShardFailure, match="failed twice"):
            doomed.ingest(data.lhs, data.rhs)

    def test_only_failed_shard_is_retried(self, monkeypatch, registry):
        """The healthy shards' pool results are kept, not recomputed."""
        data, template = make_stream(seed=29)
        ingestor = ShardedIngestor(template, workers=4)
        monkeypatch.setenv(sharded_module.FAILURE_ENV, "2")
        ingestor.ingest(data.lhs, data.rhs)
        # 4 shards attempted, exactly one retried: 5 completed jobs total
        # would each have recorded a wall-time observation, but the killed
        # attempt died before ingesting, so exactly 4 observations exist.
        assert registry.histogram("sharded.shard_seconds").count == 4
        assert registry.counter("sharded.shard_retries").value == 1

    @pytest.mark.skipif(
        not POOL_AVAILABLE, reason="no process pool in this environment"
    )
    def test_hung_worker_times_out_and_retries(self, registry):
        """A worker sleeping past job_timeout is declared dead; the shard
        re-ingests serially and the run completes."""
        data, template = make_stream(seed=31)
        clean = ShardedIngestor(template, workers=2).ingest(data.lhs, data.rhs)
        hung = ShardedIngestor(
            template,
            workers=2,
            job_timeout=1.0,
            failure_hook=_hang_shard_zero_first_attempt,
        )
        started = time.perf_counter()
        recovered = hung.ingest(data.lhs, data.rhs)
        elapsed = time.perf_counter() - started
        assert recovered.to_bytes() == clean.to_bytes()
        # On a single-core pool the sleeper also blocks the healthy shard
        # past its deadline, so up to both shards may retry serially.
        assert registry.counter("sharded.shard_retries").value >= 1
        # The 30s sleeper must have been abandoned, not waited out.
        assert elapsed < 15.0


class TestSingleWorkerPath:
    def test_serial_ingest_also_retries(self, monkeypatch, registry):
        """workers=1 runs in-process but honours the same retry contract."""
        data, template = make_stream(seed=37)
        ingestor = ShardedIngestor(template, workers=1)
        monkeypatch.delenv(sharded_module.FAILURE_ENV, raising=False)
        clean = ingestor.ingest(data.lhs, data.rhs)
        monkeypatch.setenv(sharded_module.FAILURE_ENV, "0")
        recovered = ingestor.ingest(data.lhs, data.rhs)
        assert recovered.to_bytes() == clean.to_bytes()
        assert registry.counter("sharded.shard_retries").value == 1


class TestAvailableWorkers:
    def test_prefers_affinity_mask_over_cpu_count(self, monkeypatch):
        """cgroup/taskset-constrained hosts must not overcommit: the
        schedulable-CPU set wins over the raw core count."""
        monkeypatch.setattr(
            os, "sched_getaffinity", lambda pid: {0, 3}, raising=False
        )
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert available_workers() == 2

    def test_falls_back_to_cpu_count_without_affinity(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 3)
        assert available_workers() == 3

    def test_never_below_one(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert available_workers() == 1


def _fresh_runtime():
    """Shut the global runtime down so the next ingest starts a new pool."""
    pool_module.shutdown_runtime()


def make_profile_stream(profile: str, *, theta: float = 0.0, size: int = 1200):
    lhs, rhs = generate_stream(profile, seed=5, size=size)
    conditions = ImplicationConditions(
        min_support=2, top_c=1, min_top_confidence=theta
    )
    template = ImplicationCountEstimator(conditions, num_bitmaps=8, seed=3)
    return lhs, rhs, template


@pytest.mark.skipif(not POOL_AVAILABLE, reason="no process pool in this environment")
class TestPersistentPool:
    """The persistent worker runtime: reuse, respawn, determinism."""

    def test_pool_survives_across_ingest_calls(self, registry):
        """The scaling fix itself: the second ingest reuses live workers
        instead of forking a fresh pool."""
        _fresh_runtime()
        data, template = make_stream(seed=43)
        ingestor = ShardedIngestor(template, workers=2)
        first = ingestor.ingest(data.lhs, data.rhs)
        pids_after_first = pool_module.get_runtime().worker_pids()
        second = ingestor.ingest(data.lhs, data.rhs)
        pids_after_second = pool_module.get_runtime().worker_pids()
        assert first.to_bytes() == second.to_bytes()
        assert pids_after_first and pids_after_first == pids_after_second
        assert registry.counter("pool.reuses").value >= 1
        assert registry.counter("pool.respawns").value == 0

    @pytest.mark.parametrize("kernels", available_backends())
    @pytest.mark.parametrize(
        "profile", ["uniform", "skewed", "float_trigger_dense"]
    )
    def test_pool_reuse_determinism_across_profiles(
        self, registry, profile, kernels
    ):
        """persistent pool == fresh pool == serial, bit-for-bit, on the
        verify harness's adversarial stream profiles — including a sticky
        (theta > 0) condition profile, because all three legs share one
        merge structure — under every available kernel backend."""
        lhs, rhs, template = make_profile_stream(profile, theta=0.5)
        serial = ShardedIngestor(
            template, workers=3, use_pool=False, kernels=kernels
        ).ingest(lhs, rhs)
        _fresh_runtime()
        fresh = ShardedIngestor(template, workers=3, kernels=kernels).ingest(
            lhs, rhs
        )
        reused = ShardedIngestor(template, workers=3, kernels=kernels).ingest(
            lhs, rhs
        )
        assert (
            estimator_state_digest(serial)
            == estimator_state_digest(fresh)
            == estimator_state_digest(reused)
        )
        assert registry.counter("pool.spawns").value >= 1
        assert registry.counter("pool.reuses").value >= 1

    def test_worker_sigkilled_mid_ingest_respawns_and_retries(self, registry):
        """A pooled worker SIGKILLed mid-ingest (no timeout needed — the
        pipe closes) costs only its shard: serial retry, slot respawned,
        pool still healthy for the next ingest."""
        data, template = make_stream(seed=41)
        clean = ShardedIngestor(template, workers=3, use_pool=False).ingest(
            data.lhs, data.rhs
        )
        _fresh_runtime()
        lethal = ShardedIngestor(
            template, workers=3, failure_hook=_sigkill_worker_on_shard_one
        )
        recovered = lethal.ingest(data.lhs, data.rhs)
        assert recovered.to_bytes() == clean.to_bytes()
        assert registry.counter("pool.respawns").value >= 1
        assert registry.counter("sharded.shard_retries").value == 1
        # The runtime stays serviceable: a hook-free ingest on the same
        # (respawned) pool still matches.
        again = ShardedIngestor(template, workers=3).ingest(data.lhs, data.rhs)
        assert again.to_bytes() == clean.to_bytes()

    def test_template_ships_once_per_worker_across_chunks(self, registry, tmp_path):
        """The sibling payload crosses the boundary once per worker per
        epoch — chunked checkpointed ingest must not re-ship it per job."""
        from repro.recovery.checkpoint import CheckpointManager

        _fresh_runtime()
        lhs, rhs, template = make_profile_stream("uniform", size=1200)
        manager = CheckpointManager(str(tmp_path / "ckpt"), keep=3)
        ShardedIngestor(template, workers=2).ingest_checkpointed(
            lhs, rhs, manager=manager, chunk_size=300
        )
        ships = registry.counter("pool.template_ships").value
        hits = registry.counter("pool.template_hits").value
        jobs = registry.counter("sharded.jobs").value
        spawned = (
            registry.counter("pool.spawns").value
            + registry.counter("pool.respawns").value
        )
        assert ships + hits == jobs  # every pooled job was accounted
        assert ships <= spawned  # at most one ship per worker process
        assert hits >= jobs - spawned  # 4 chunks x 2 shards: the rest hit

    def test_snapshots_fold_in_shard_order_not_arrival_order(self, registry):
        """Gauge merges are last-write-wins; folding must follow shard
        index even when later shards finish first, so identical runs
        produce identical merged telemetry."""
        data, template = make_stream(seed=47)
        _fresh_runtime()
        ingestor = ShardedIngestor(
            template, workers=3, failure_hook=_stagger_shards_inverse
        )
        for _ in range(2):
            ingestor.ingest(data.lhs, data.rhs)
            assert registry.gauge("sharded.last_shard_folded").value == 2


def _noop_module_hook(shard_index: int, attempt: int) -> None:
    """Picklable no-op; the lambda twin below is the unpicklable case."""


class _RaisingConn:
    """A connection whose send always fails mid-serialization."""

    def send(self, message):
        raise RuntimeError("injected send failure (unpicklable payload)")


class _StubProcess:
    pid = -1


class TestDispatchFaults:
    """A raising ``conn.send`` must not corrupt template-cache bookkeeping."""

    def _job(self, template):
        payload = template.spawn_sibling().to_bytes()
        return pool_module.ShardJob(
            shard_index=0,
            attempt=0,
            digest=pool_module.template_digest(payload),
            template_payload=payload,
            offset=0,
            length=4,
            aggregate=True,
            grouped=True,
            fail_injected=False,
            failure_hook=None,
        )

    def test_send_failure_does_not_mark_template_cached(self, registry):
        __, template = make_stream(seed=13)
        job = self._job(template)
        runtime = pool_module.WorkerRuntime()
        worker = pool_module._Worker(_StubProcess(), _RaisingConn())
        segment = pool_module.InlineSegment(
            np.zeros(4, dtype=np.uint64), np.zeros(4, dtype=np.uint64)
        )
        with pytest.raises(RuntimeError):
            runtime._dispatch(worker, job, segment)
        # The worker never received the template: recording its digest now
        # would make the next job for this geometry skip the ship and sink
        # on a missing template.
        assert job.digest not in worker.digests
        assert registry.counter("pool.template_ships").value == 0
        assert registry.counter("pool.template_hits").value == 0

    @pytest.mark.skipif(
        not POOL_AVAILABLE, reason="no process pool in this environment"
    )
    def test_unpicklable_hook_fails_shards_not_the_pool(self, registry):
        """An unpicklable failure_hook dies inside ``conn.send`` while the
        message is serialized.  The shard must fail cleanly (serial
        in-parent retry, where no pickling happens), the digest must match
        the no-pool leg, and the pool must stay usable afterwards."""
        _fresh_runtime()
        data, template = make_stream(seed=29)
        unpicklable = lambda shard_index, attempt: None  # noqa: E731
        pooled = ShardedIngestor(
            template, workers=2, failure_hook=unpicklable
        ).ingest(data.lhs, data.rhs)
        serial = ShardedIngestor(
            template, workers=2, use_pool=False, failure_hook=_noop_module_hook
        ).ingest(data.lhs, data.rhs)
        assert estimator_state_digest(pooled) == estimator_state_digest(serial)
        assert registry.counter("engine.shard_retries").value > 0
        # Slot bookkeeping survived: the next pooled ingest is clean.
        clean = ShardedIngestor(template, workers=2).ingest(data.lhs, data.rhs)
        assert estimator_state_digest(clean) == estimator_state_digest(serial)


class _LegacySharedMemory:
    """Stand-in for the pre-3.13 SharedMemory: no ``track`` kwarg."""

    # Bound at definition time: the test monkeypatches the module global,
    # so delegating through the module would recurse into this stub.
    _real = multiprocessing.shared_memory.SharedMemory

    def __init__(self, *args, **kwargs):
        if "track" in kwargs:
            raise TypeError(
                "__init__() got an unexpected keyword argument 'track'"
            )
        self._shm = self._real(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._shm, name)


class TestAttachTracking:
    """Worker-side attaches must never register segment ownership."""

    def test_attach_untracked_suppresses_registration(self, tmp_path):
        from multiprocessing import resource_tracker

        owned = multiprocessing.shared_memory.SharedMemory(create=True, size=64)
        recorded = []
        original = resource_tracker.register
        try:
            resource_tracker.register = lambda name, rtype: recorded.append(
                (name, rtype)
            )
            attached = workers_module._attach_untracked(owned.name)
            attached.close()
            assert recorded == []
            # Sanity: the recorder does see a plain (tracked) attach.
            plain = multiprocessing.shared_memory.SharedMemory(name=owned.name)
            plain.close()
            assert len(recorded) == 1
        finally:
            resource_tracker.register = original
            owned.close()
            owned.unlink()

    def test_segment_cache_fallback_attach_is_untracked(self, monkeypatch):
        from multiprocessing import resource_tracker

        owned = multiprocessing.shared_memory.SharedMemory(create=True, size=64)
        recorded = []
        monkeypatch.setattr(
            workers_module.shared_memory, "SharedMemory", _LegacySharedMemory
        )
        original = resource_tracker.register
        monkeypatch.setattr(
            resource_tracker,
            "register",
            lambda name, rtype: recorded.append((name, rtype)),
        )
        cache = workers_module._SegmentCache()
        lhs, rhs = cache.resolve(owned.name, rows=4, offset=0, length=4)
        assert len(lhs) == 4 and len(rhs) == 4
        cache.release()
        monkeypatch.setattr(resource_tracker, "register", original)
        assert recorded == [], (
            "fallback attach registered segment ownership; a worker-owned "
            "resource tracker would unlink the parent's live segment"
        )
        owned.close()
        owned.unlink()

    @pytest.mark.skipif(
        not POOL_AVAILABLE, reason="no process pool in this environment"
    )
    def test_pooled_ingest_leaves_no_tracker_noise(self):
        """End to end: pooled ingest + worker shutdown in a subprocess must
        produce no resource_tracker KeyErrors or leaked-segment warnings
        on stderr (the symptom of either tracked worker attaches or
        parent-registration loss)."""
        import subprocess
        import sys
        from pathlib import Path

        import repro

        src = Path(repro.__file__).resolve().parents[1]
        script = (
            "from repro.datasets.synthetic import generate_dataset_one\n"
            "from repro.core.estimator import ImplicationCountEstimator\n"
            "from repro.engine import ShardedIngestor, shutdown_runtime\n"
            "data = generate_dataset_one(600, 300, c=1, seed=9)\n"
            "template = ImplicationCountEstimator(data.conditions, seed=9)\n"
            "ingestor = ShardedIngestor(template, workers=2)\n"
            "for _ in range(3):\n"
            "    ingestor.ingest(data.lhs, data.rhs)\n"
            "shutdown_runtime()\n"
        )
        env = dict(os.environ, PYTHONPATH=str(src))
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        assert result.returncode == 0, result.stderr
        for needle in ("resource_tracker", "leaked shared_memory", "KeyError"):
            assert needle not in result.stderr, result.stderr
