"""Integration tests asserting the paper's *shape* conclusions.

Each test corresponds to a claim the evaluation section makes.  Absolute
numbers differ (our substrate is a simulator and the trials are smaller),
so bounds are generous — but the orderings and regimes must hold:

1. NIPS/CI estimates implication counts within a small relative error
   across the Dataset One sweep (Figures 4-6 envelope).
2. The bounded fringe (F=4) tracks the unbounded fringe closely
   (Figures 4-6: "the difference ... is negligible").
3. Fixing the fringe floors the estimable non-implication count at
   ``2**-F * F0`` (Section 4.3.3) — a larger fringe resolves smaller counts.
4. ILC returns very erroneous results on the OLAP workloads while using
   *more* memory than NIPS/CI (Figure 7 discussion).
5. NIPS/CI memory stays bounded while exact memory grows with the number
   of distinct itemsets (Section 4.6).
6. DS degrades when minimum support rises (Figure 7a vs 7b discussion).
"""

from __future__ import annotations

import pytest

from repro.analysis.errors import relative_error, summarize_errors
from repro.baselines.exact import ExactImplicationCounter
from repro.core.approximation import minimum_estimable_count
from repro.core.estimator import ImplicationCountEstimator
from repro.datasets.synthetic import generate_dataset_one
from repro.experiments import run_dataset_one_point, run_workload


class TestClaim1AccuracyEnvelope:
    def test_mean_error_small_across_sweep(self):
        """Paper envelope is 5-10% over 100 trials; we allow 25% with 4."""
        for fraction in (0.3, 0.6, 0.9):
            point = run_dataset_one_point(
                400, fraction, c=1, trials=4, base_seed=17
            )
            assert point.bounded.mean < 0.25, (fraction, point.bounded)

    def test_error_does_not_explode_with_c(self):
        for c in (1, 2, 4):
            point = run_dataset_one_point(300, 0.5, c=c, trials=3, base_seed=5)
            assert point.bounded.mean < 0.30, (c, point.bounded)


class TestClaim2BoundedTracksUnbounded:
    def test_difference_negligible_for_moderate_counts(self):
        point = run_dataset_one_point(500, 0.5, c=1, trials=4, base_seed=29)
        assert abs(point.bounded.mean - point.unbounded.mean) < 0.15


class TestClaim3FringeFloor:
    def test_larger_fringe_resolves_smaller_counts(self):
        """Build a stream whose non-implication count sits below the F=2
        floor but above the F=6 floor; the F=6 estimate must be materially
        better."""
        errors = {2: [], 6: []}
        for seed in range(4):
            data = generate_dataset_one(1500, 1400, c=1, seed=seed)
            actual = float(data.truth.violated)  # ~66 of 1500 distinct
            floor_f2 = minimum_estimable_count(2, 1500)
            assert actual < floor_f2  # below the F=2 floor: clamping regime
            for fringe in (2, 6):
                estimator = ImplicationCountEstimator(
                    data.conditions, fringe_size=fringe, seed=seed + 40
                )
                estimator.update_batch(data.lhs, data.rhs)
                errors[fringe].append(
                    relative_error(actual, estimator.nonimplication_count())
                )
        mean_f2 = summarize_errors(errors[2]).mean
        mean_f6 = summarize_errors(errors[6]).mean
        assert mean_f6 < mean_f2

    def test_floor_formula(self):
        assert minimum_estimable_count(4, 1600) == 100.0


class TestClaim4IlcFailsOnWorkloads:
    def test_ilc_much_worse_than_nips_late_in_stream(self):
        run = run_workload(
            "A",
            60_000,
            min_support=5,
            min_top_confidence=0.6,
            checkpoints=[40_000, 60_000],
            seed=31,
        )
        last = run.rows[-1]
        assert last.error("ilc") > 0.5  # "very erroneous" (Fig. 7)
        assert last.error("nips") < 0.3
        assert last.error("ilc") > 2 * last.error("nips")


class TestClaim5MemoryScaling:
    def test_nips_memory_constant_while_exact_grows(self):
        small = generate_dataset_one(300, 150, c=1, seed=1)
        large = generate_dataset_one(3000, 1500, c=1, seed=1)
        footprints = {}
        for label, data in (("small", small), ("large", large)):
            estimator = ImplicationCountEstimator(data.conditions, seed=2)
            exact = ExactImplicationCounter(data.conditions)
            estimator.update_batch(data.lhs, data.rhs)
            exact.update_batch(data.lhs, data.rhs)
            footprints[label] = (
                estimator.memory_profile().stored_itemsets,
                exact.distinct_count(),
            )
        sketch_growth = footprints["large"][0] / max(footprints["small"][0], 1)
        exact_growth = footprints["large"][1] / footprints["small"][1]
        assert exact_growth == pytest.approx(10.0)
        assert sketch_growth < 3.0  # bounded by the fringe budget, not |A|


class TestClaim6DsDegradesWithSupport:
    def test_ds_worse_at_sigma_50(self):
        """DS scales the qualifying fraction of its sample by 2**level; at
        sigma=50 far fewer sampled itemsets qualify, so the scaled estimate
        is noisier (a variance effect — averaged over seeds)."""
        checkpoints = [150_000]
        errors = {5: [], 50: []}
        for seed in (43, 44, 45):
            for sigma in (5, 50):
                run = run_workload(
                    "A",
                    150_000,
                    min_support=sigma,
                    min_top_confidence=0.6,
                    checkpoints=checkpoints,
                    algorithms=("ds",),
                    seed=seed,
                )
                errors[sigma].append(run.rows[-1].error("ds"))
        mean_5 = summarize_errors(errors[5]).mean
        mean_50 = summarize_errors(errors[50]).mean
        assert mean_50 > mean_5
