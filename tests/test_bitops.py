"""Unit and property tests for repro.sketch.bitops."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sketch.bitops import (
    HASH_BITS,
    bit_length_array,
    least_significant_bit,
    least_significant_bit_array,
    most_significant_bit,
    reverse_bits64,
)

uint64s = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestLeastSignificantBit:
    def test_powers_of_two(self):
        for exponent in range(64):
            assert least_significant_bit(1 << exponent) == exponent

    def test_trailing_bits_ignored(self):
        assert least_significant_bit(0b1011000) == 3

    def test_zero_maps_to_default(self):
        assert least_significant_bit(0) == HASH_BITS
        assert least_significant_bit(0, default=7) == 7

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            least_significant_bit(-1)

    @given(uint64s.filter(lambda v: v != 0))
    def test_definition(self, value):
        position = least_significant_bit(value)
        assert value % (1 << position) == 0
        assert (value >> position) & 1 == 1


class TestMostSignificantBit:
    def test_powers_of_two(self):
        for exponent in range(64):
            assert most_significant_bit(1 << exponent) == exponent

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            most_significant_bit(0)

    @given(uint64s.filter(lambda v: v != 0))
    def test_matches_bit_length(self, value):
        assert most_significant_bit(value) == value.bit_length() - 1


class TestVectorizedLsb:
    def test_matches_scalar(self):
        values = np.array(
            [0, 1, 2, 3, 4, 8, 12, 1 << 63, (1 << 64) - 1], dtype=np.uint64
        )
        expected = [least_significant_bit(int(v)) for v in values]
        assert least_significant_bit_array(values).tolist() == expected

    @given(st.lists(uint64s, min_size=1, max_size=50))
    def test_matches_scalar_random(self, values):
        array = np.array(values, dtype=np.uint64)
        expected = [least_significant_bit(v) for v in values]
        assert least_significant_bit_array(array).tolist() == expected

    def test_custom_default(self):
        out = least_significant_bit_array(np.zeros(3, dtype=np.uint64), default=9)
        assert out.tolist() == [9, 9, 9]


class TestBitLengthArray:
    @given(st.lists(uint64s, min_size=1, max_size=50))
    def test_matches_int_bit_length(self, values):
        array = np.array(values, dtype=np.uint64)
        expected = [v.bit_length() for v in values]
        assert bit_length_array(array).tolist() == expected

    def test_boundary_powers(self):
        # Float-log rounding near powers of two is the tricky region.
        values = []
        for exponent in range(1, 64):
            values.extend([(1 << exponent) - 1, 1 << exponent, (1 << exponent) + 1])
        array = np.array(values, dtype=np.uint64)
        expected = [v.bit_length() for v in values]
        assert bit_length_array(array).tolist() == expected


class TestReverseBits:
    def test_known_values(self):
        assert reverse_bits64(0) == 0
        assert reverse_bits64(1) == 1 << 63
        assert reverse_bits64(1 << 63) == 1

    @given(uint64s)
    def test_involution(self, value):
        assert reverse_bits64(reverse_bits64(value)) == value

    def test_range_check(self):
        with pytest.raises(ValueError):
            reverse_bits64(1 << 64)
        with pytest.raises(ValueError):
            reverse_bits64(-1)
