"""Crash-injection proof: SIGKILL mid-ingest, resume, digest equality.

The acceptance bar for the durability subsystem is operational: a real
subprocess killed with SIGKILL at >= 10 fuzzed protocol windows —
including mid-payload-write and mid-rename, where a torn file is
physically possible — must, after ``resume``, land on exactly the
``estimator_state_digest`` of an uninterrupted run, and a corrupted
latest checkpoint must fall back to the previous generation.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.recovery import CrashInjectionHarness, RunConfig
from repro.recovery.crash import CRASH_ENV, armed_point, maybe_crash


def workdir_for(tmp_path, name: str) -> str:
    """Keep artifacts under ``REPRO_CRASH_WORKDIR`` when CI sets it.

    CI points this at a path it uploads on failure, so a red run leaves
    the surviving checkpoint directories behind for post-mortem; local
    runs default to pytest's tmp tree.
    """
    base = os.environ.get("REPRO_CRASH_WORKDIR")
    if base:
        return os.path.join(base, name)
    return str(tmp_path / name)


SMALL = RunConfig(tuples=1500, chunk_size=250, num_bitmaps=8, workers=2)


class TestCrashPoints:
    def test_disarmed_by_default(self, monkeypatch):
        monkeypatch.delenv(CRASH_ENV, raising=False)
        assert armed_point() is None
        maybe_crash("gen0:payload-mid-write")  # no-op, must not raise

    def test_non_matching_point_is_a_noop(self, monkeypatch):
        monkeypatch.setenv(CRASH_ENV, "gen7:mid-rename")
        assert armed_point() == "gen7:mid-rename"
        maybe_crash("gen0:mid-rename")
        maybe_crash("chunk:7")

    def test_candidate_space_covers_chunks_and_generations(self, tmp_path):
        harness = CrashInjectionHarness(SMALL, workdir_for(tmp_path, "cand"))
        candidates = harness.candidate_kill_points()
        # 6 chunks -> 5 interior chunk boundaries; 6 generations with
        # every save stage except the final post-commit.
        assert [p for p in candidates if p.startswith("chunk:")] == [
            f"chunk:{i}" for i in range(5)
        ]
        assert "gen0:payload-mid-write" in candidates
        assert "gen5:mid-rename" in candidates
        assert "gen5:post-commit" not in candidates
        assert "gen4:post-commit" in candidates

    def test_fuzzed_sample_always_forces_torn_windows(self, tmp_path):
        harness = CrashInjectionHarness(SMALL, workdir_for(tmp_path, "fuzz"))
        for seed in range(5):
            sample = harness.fuzz_kill_points(6, seed=seed)
            assert len(sample) == 6
            assert len(set(sample)) == 6
            assert any(p.endswith("payload-mid-write") for p in sample)
            assert any(p.endswith("mid-rename") for p in sample)

    def test_sample_capped_at_candidate_space(self, tmp_path):
        harness = CrashInjectionHarness(SMALL, workdir_for(tmp_path, "cap"))
        candidates = harness.candidate_kill_points()
        sample = harness.fuzz_kill_points(10_000, seed=0)
        assert sorted(sample) == sorted(candidates)


class TestCrashInjection:
    """The acceptance-criterion run: >= 10 fuzzed SIGKILLs + corruption."""

    def test_ten_fuzzed_kill_points_resume_bit_for_bit(self, tmp_path):
        harness = CrashInjectionHarness(SMALL, workdir_for(tmp_path, "sweep"))
        report = harness.run(points=10, seed=0)
        # 10 fuzzed kill/resume cycles plus the corruption-fallback
        # scenario, every one landing on the uninterrupted digest.
        assert len(report.outcomes) == 11
        kills = [o for o in report.outcomes if o.kill_point.startswith(("chunk", "gen"))]
        assert len(kills) == 10
        assert all(o.returncode == -signal.SIGKILL for o in kills)
        covered = {o.kill_point.split(":")[-1] for o in kills}
        assert "payload-mid-write" in covered
        assert "mid-rename" in covered
        assert report.ok, harness.describe(report)

    def test_corruption_fallback_restores_previous_generation(self, tmp_path):
        harness = CrashInjectionHarness(SMALL, workdir_for(tmp_path, "corrupt"))
        outcome = harness.run_corruption_fallback()
        latest = int(outcome.kill_point.removeprefix("corrupt-gen"))
        assert outcome.restored_generation == latest - 1
        assert outcome.skipped_generations[0]["generation"] == latest
        assert outcome.resume_digest == harness.reference_digest()
        assert outcome.matches(harness.reference_digest())

    def test_unarmed_subprocess_is_not_reported_killed(self, tmp_path):
        harness = CrashInjectionHarness(SMALL, workdir_for(tmp_path, "vacuous"))
        # A crash point the run never reaches: the subprocess exits 0 and
        # the harness must flag the experiment vacuous, not pass it.
        outcome = harness.run_point("chunk:9999")
        assert not outcome.killed
        assert outcome.returncode == 0
        assert not outcome.matches(harness.reference_digest())


@pytest.mark.fuzz
class TestCrashFuzzTier:
    """Wider nightly sweep: more points, saves skipped, second seed band."""

    def test_exhaustive_kill_point_sweep(self, tmp_path):
        config = RunConfig(
            tuples=2400, chunk_size=300, num_bitmaps=8, workers=2, every=2
        )
        harness = CrashInjectionHarness(
            config, workdir_for(tmp_path, "nightly-every2")
        )
        candidates = harness.candidate_kill_points()
        report = harness.run(points=len(candidates), seed=1)
        assert len(report.outcomes) == len(candidates) + 1
        assert report.ok, harness.describe(report)

    def test_skewed_profile_second_seed(self, tmp_path):
        config = RunConfig(
            tuples=2000,
            chunk_size=250,
            num_bitmaps=8,
            workers=2,
            seed=11,
            profile="skewed",
            theta=0.6,
        )
        harness = CrashInjectionHarness(
            config, workdir_for(tmp_path, "nightly-skewed")
        )
        report = harness.run(points=12, seed=2)
        assert report.ok, harness.describe(report)
